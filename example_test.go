package focus_test

// Testable examples of the unified ModelClass API, shown in godoc.

import (
	"context"
	"fmt"
	"log"
	"strings"

	"focus"
)

// repeatTxns builds a deterministic dataset repeating a purchasing mix.
func repeatTxns(reps int, mix []focus.Transaction) *focus.TxnDataset {
	var txns []focus.Transaction
	for i := 0; i < reps; i++ {
		txns = append(txns, mix...)
	}
	return focus.FromTransactions(4, txns)
}

// The example mixes over a universe of four items: in week 2 the dominant
// co-purchase {0,1} has given way to {2,3}.
var (
	week1Mix = []focus.Transaction{{0, 1}, {0, 1}, {0, 1}, {0, 1}, {0, 2}, {0, 2}, {1, 3}, {1, 3}}
	week2Mix = []focus.Transaction{{2, 3}, {2, 3}, {2, 3}, {2, 3}, {0, 2}, {0, 2}, {1, 3}, {0, 1}}
)

func exampleData() (*focus.TxnDataset, *focus.TxnDataset) {
	return repeatTxns(4, week1Mix), repeatTxns(4, week2Mix)
}

func ExampleDeviation() {
	week1, week2 := exampleData()
	lits := focus.Lits(0.25) // the lits-model class at 25% minimum support
	m1, err := lits.Induce(week1, 0)
	if err != nil {
		log.Fatal(err)
	}
	m2, err := lits.Induce(week2, 0)
	if err != nil {
		log.Fatal(err)
	}
	dev, err := focus.Deviation(lits, m1, m2, week1, week2, focus.AbsoluteDiff, focus.Sum)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("delta(fa,sum) = %.4f\n", dev)
	// Output:
	// delta(fa,sum) = 2.7500
}

func ExampleQualify() {
	week1, week2 := exampleData()
	q, err := focus.Qualify(focus.Lits(0.25), week1, week2, focus.AbsoluteDiff, focus.Sum,
		focus.WithReplicates(99), focus.WithSeed(1))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("deviation %.4f at significance %.0f%%\n", q.Deviation, q.Significance)
	// Output:
	// deviation 2.7500 at significance 100%
}

func ExampleNewMonitor() {
	week1, _ := exampleData()
	// Monitor a stream of batches against week1, alerting on drift.
	mon, err := focus.NewMonitor(focus.Lits(0.25), week1,
		focus.WithWindow(1), focus.WithThreshold(1.0))
	if err != nil {
		log.Fatal(err)
	}
	// Day 0 repeats week 1's purchasing mix exactly; day 1 drifts to the
	// changed mix.
	for day, batch := range []*focus.TxnDataset{repeatTxns(1, week1Mix), repeatTxns(1, week2Mix)} {
		rep, err := mon.Ingest(batch)
		if err != nil {
			log.Fatal(err)
		}
		status := "ok"
		if rep.Alert {
			status = "ALERT"
		}
		fmt.Printf("day %d: delta = %.4f over %d regions (%s)\n", day, rep.Deviation, rep.Regions, status)
	}
	// Output:
	// day 0: delta = 0.0000 over 7 regions (ok)
	// day 1: delta = 2.7500 over 8 regions (ALERT)
}

func ExamplePump() {
	week1, _ := exampleData()
	// A Source decodes data incrementally — here the line-oriented
	// transaction format, re-batched to 8 transactions per batch — and
	// Pump drives it through a monitor pinned on week 1.
	var stream strings.Builder
	if err := repeatTxns(2, week2Mix).Write(&stream); err != nil {
		log.Fatal(err)
	}
	mon, err := focus.NewMonitor(focus.Lits(0.25), week1,
		focus.WithWindow(1), focus.WithThreshold(1.0))
	if err != nil {
		log.Fatal(err)
	}
	src := focus.Chunked(focus.TxnSource(strings.NewReader(stream.String())), 8)
	n, err := focus.Pump(context.Background(), src, mon)
	if err != nil {
		log.Fatal(err)
	}
	last := mon.Last()
	fmt.Printf("pumped %d batches: delta = %.4f (alert=%v)\n", n, last.Deviation, last.Alert)
	// Output:
	// pumped 2 batches: delta = 2.7500 (alert=true)
}
