package focus_test

// The acceptance test of the ModelClass abstraction: a brand-new model
// class — a single-attribute equi-width histogram — is registered by
// implementing focus.ModelClass alone and flows through Deviation,
// Qualify, RankRegions and NewMonitor without touching any core or stream
// internals. The structural component is the set of non-empty bins, the
// GCR of two models is the union of their non-empty bins, and the
// mergeable streaming summary is the per-batch bin-count vector.

import (
	"fmt"
	"math/rand"
	"testing"

	"focus"
	"focus/internal/classgen"
)

// histModel is a histogram's measure component: bin counts over the
// class's fixed binning.
type histModel struct {
	counts []int
	n      int
}

// histClass is the toy instantiation: an equi-width histogram over one
// numeric attribute.
type histClass struct {
	schema *focus.Schema
	attr   int
	bins   int
}

func (histClass) Name() string { return "histogram" }

func (histClass) Len(d *focus.Dataset) int { return d.Len() }

func (histClass) Concat(d1, d2 *focus.Dataset) (*focus.Dataset, error) { return d1.Concat(d2) }

func (histClass) Resample(d *focus.Dataset, n int, rng *rand.Rand) *focus.Dataset {
	return d.Resample(n, rng)
}

func (h histClass) binOf(t focus.Tuple) int {
	a := h.schema.Attrs[h.attr]
	b := int(float64(h.bins) * (t[h.attr] - a.Min) / (a.Max - a.Min))
	if b < 0 {
		b = 0
	}
	if b >= h.bins {
		b = h.bins - 1
	}
	return b
}

func (h histClass) countBins(d *focus.Dataset) []int {
	counts := make([]int, h.bins)
	for _, t := range d.Tuples {
		counts[h.binOf(t)]++
	}
	return counts
}

func (h histClass) Induce(d *focus.Dataset, parallelism int) (*histModel, error) {
	return &histModel{counts: h.countBins(d), n: d.Len()}, nil
}

// MeasureGCR: the refined regions are the bins non-empty in either model's
// structural component, in ascending bin order, measured by counting each
// dataset's tuples per bin.
func (h histClass) MeasureGCR(m1, m2 *histModel, d1, d2 *focus.Dataset, cfg *focus.Config) ([]focus.MeasuredRegion, error) {
	if len(m1.counts) != h.bins || len(m2.counts) != h.bins {
		return nil, fmt.Errorf("histogram: foreign model binning")
	}
	c1 := h.countBins(d1)
	c2 := h.countBins(d2)
	var out []focus.MeasuredRegion
	for b := 0; b < h.bins; b++ {
		if m1.counts[b] == 0 && m2.counts[b] == 0 {
			continue
		}
		out = append(out, focus.MeasuredRegion{Alpha1: float64(c1[b]), Alpha2: float64(c2[b])})
	}
	return out, nil
}

func (h histClass) NewWindow(parallelism int) (focus.ModelWindow[*focus.Dataset, *histModel], error) {
	return &histWindow{class: h, counts: make([]int, h.bins)}, nil
}

func (h histClass) MeasureGCRWindows(m1, m2 *histModel, w1, w2 focus.ModelWindow[*focus.Dataset, *histModel]) ([]focus.MeasuredRegion, error) {
	hw1, ok1 := w1.(*histWindow)
	hw2, ok2 := w2.(*histWindow)
	if !ok1 || !ok2 {
		return nil, fmt.Errorf("histogram: foreign windows %T/%T", w1, w2)
	}
	var out []focus.MeasuredRegion
	for b := 0; b < h.bins; b++ {
		if m1.counts[b] == 0 && m2.counts[b] == 0 {
			continue
		}
		out = append(out, focus.MeasuredRegion{Alpha1: float64(hw1.counts[b]), Alpha2: float64(hw2.counts[b])})
	}
	return out, nil
}

// histWindow is the mergeable streaming summary: per-batch bin counts that
// add into and subtract out of the aggregate exactly.
type histWindow struct {
	class   histClass
	batches []*histBatch
	counts  []int
	n       int
}

type histBatch struct {
	data   *focus.Dataset
	counts []int
}

func (w *histWindow) Add(d *focus.Dataset, parallelism int) error {
	if err := d.Validate(); err != nil {
		return err
	}
	b := &histBatch{data: d, counts: w.class.countBins(d)}
	w.batches = append(w.batches, b)
	for i, v := range b.counts {
		w.counts[i] += v
	}
	w.n += d.Len()
	return nil
}

func (w *histWindow) RemoveFront() {
	b := w.batches[0]
	w.batches = w.batches[1:]
	for i, v := range b.counts {
		w.counts[i] -= v
	}
	w.n -= b.data.Len()
}

func (w *histWindow) Batches() int { return len(w.batches) }
func (w *histWindow) N() int       { return w.n }

func (w *histWindow) Data() *focus.Dataset {
	out := focus.FromTuples(w.class.schema, nil)
	for _, b := range w.batches {
		out.Tuples = append(out.Tuples, b.data.Tuples...)
	}
	return out
}

func (w *histWindow) Clone() focus.ModelWindow[*focus.Dataset, *histModel] {
	return &histWindow{
		class:   w.class,
		batches: append([]*histBatch(nil), w.batches...),
		counts:  append([]int(nil), w.counts...),
		n:       w.n,
	}
}

func (w *histWindow) Induce() (*histModel, error) {
	return &histModel{counts: append([]int(nil), w.counts...), n: w.n}, nil
}

// TestCustomModelClass drives the toy histogram class through all four
// unified pipelines.
func TestCustomModelClass(t *testing.T) {
	schema := classgen.Schema()
	hc := histClass{schema: schema, attr: classgen.AttrSalary, bins: 8}
	// The interface assertion is the registration: nothing else is needed.
	var mc focus.ModelClass[*focus.Dataset, *histModel] = hc

	d1 := classData(t, 2000, classgen.F1, 401)
	d2 := classData(t, 1800, classgen.F1, 402)
	// d3 has a genuinely different salary distribution: the low-salary
	// population vanished.
	full := classData(t, 3600, classgen.F1, 403)
	d3 := focus.FromTuples(schema, nil)
	for _, tup := range full.Tuples {
		if tup[classgen.AttrSalary] >= 60000 {
			d3.Add(tup)
		}
	}

	m1, err := mc.Induce(d1, 0)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := mc.Induce(d2, 0)
	if err != nil {
		t.Fatal(err)
	}
	m3, err := mc.Induce(d3, 0)
	if err != nil {
		t.Fatal(err)
	}

	// Deviation: delta(D,D) = 0; same process small, changed process larger.
	self, err := focus.Deviation(mc, m1, m1, d1, d1, focus.AbsoluteDiff, focus.Sum)
	if err != nil {
		t.Fatal(err)
	}
	if self != 0 {
		t.Errorf("delta(D,D) = %v, want 0", self)
	}
	same, err := focus.Deviation(mc, m1, m2, d1, d2, focus.AbsoluteDiff, focus.Sum)
	if err != nil {
		t.Fatal(err)
	}
	changed, err := focus.Deviation(mc, m1, m3, d1, d3, focus.AbsoluteDiff, focus.Sum)
	if err != nil {
		t.Fatal(err)
	}
	if same >= changed {
		t.Errorf("same-process deviation %v >= changed %v", same, changed)
	}

	// Qualify: deterministic bootstrap, changed process more significant.
	qSame, err := focus.Qualify(mc, d1, d2, focus.AbsoluteDiff, focus.Sum,
		focus.WithReplicates(19), focus.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	qChanged, err := focus.Qualify(mc, d1, d3, focus.AbsoluteDiff, focus.Sum,
		focus.WithReplicates(19), focus.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if qChanged.Significance < qSame.Significance {
		t.Errorf("changed significance %v < same-process %v", qChanged.Significance, qSame.Significance)
	}
	qAgain, err := focus.Qualify(mc, d1, d3, focus.AbsoluteDiff, focus.Sum,
		focus.WithReplicates(19), focus.WithSeed(5))
	if err != nil {
		t.Fatal(err)
	}
	if qAgain.Significance != qChanged.Significance || qAgain.Deviation != qChanged.Deviation {
		t.Error("histogram qualification is not deterministic")
	}

	// RankRegions: ordered by decreasing per-bin deviation.
	ranked, err := focus.RankRegions(mc, m1, m3, d1, d3, focus.AbsoluteDiff)
	if err != nil {
		t.Fatal(err)
	}
	if len(ranked) == 0 {
		t.Fatal("no ranked regions")
	}
	for i := 1; i < len(ranked); i++ {
		if ranked[i].Deviation > ranked[i-1].Deviation {
			t.Fatalf("ranking not decreasing at %d", i)
		}
	}

	// NewMonitor: the class streams through the generic incremental
	// monitor; every emission must equal rebuilding the window from its
	// raw batches through the batch pipeline.
	mon, err := focus.NewMonitor(mc, d1, focus.WithWindow(2))
	if err != nil {
		t.Fatal(err)
	}
	batches := []*focus.Dataset{
		classData(t, 400, classgen.F1, 410),
		classData(t, 400, classgen.F7, 411),
		classData(t, 400, classgen.F7, 412),
	}
	var window []*focus.Dataset
	for i, b := range batches {
		rep, err := mon.Ingest(b)
		if err != nil {
			t.Fatal(err)
		}
		if rep == nil {
			t.Fatalf("ingest %d: sliding window must emit", i)
		}
		window = append(window, b)
		if len(window) > 2 {
			window = window[1:]
		}
		winData := focus.FromTuples(schema, nil)
		for _, wb := range window {
			winData.Tuples = append(winData.Tuples, wb.Tuples...)
		}
		wm, err := mc.Induce(winData, 0)
		if err != nil {
			t.Fatal(err)
		}
		want, err := focus.Deviation(mc, m1, wm, d1, winData, focus.AbsoluteDiff, focus.Sum)
		if err != nil {
			t.Fatal(err)
		}
		if rep.Deviation != want {
			t.Errorf("ingest %d: incremental deviation %v != rebuilt %v", i, rep.Deviation, want)
		}
	}
	if mon.Reports() != 3 {
		t.Errorf("Reports = %d, want 3", mon.Reports())
	}
}
