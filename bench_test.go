package focus_test

// One benchmark per table and figure of the paper's evaluation, plus
// ablation benchmarks for the design choices called out in DESIGN.md.
//
// Benchmarks default to the "quick" scale so that `go test -bench=.` is
// practical; set FOCUS_BENCH_SCALE=laptop (the DESIGN.md default for
// reported numbers) or FOCUS_BENCH_SCALE=paper to reproduce at larger
// sizes. Each bench prints the regenerated rows/series once, so a bench run
// doubles as a reproduction log.

import (
	"math/rand"
	"os"
	"sync"
	"testing"

	"focus"
	"focus/internal/apriori"
	"focus/internal/classgen"
	"focus/internal/core"
	"focus/internal/dataset"
	"focus/internal/dtree"
	"focus/internal/experiments"
	"focus/internal/quest"
	"focus/internal/txn"
)

func benchScale(b *testing.B) experiments.Scale {
	name := os.Getenv("FOCUS_BENCH_SCALE")
	if name == "" {
		name = "quick"
	}
	sc, err := experiments.ScaleByName(name)
	if err != nil {
		b.Fatal(err)
	}
	return sc
}

var printOnce sync.Map

// printFirst prints the regenerated result once per benchmark name.
func printFirst(b *testing.B, render func()) {
	if _, loaded := printOnce.LoadOrStore(b.Name(), true); !loaded {
		render()
	}
}

func BenchmarkTable1LitsSignificance(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table1(sc, 1)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, func() { res.Print(os.Stdout) })
	}
}

func BenchmarkTable2DTSignificance(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Table2(sc, 2)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, func() { res.Print(os.Stdout) })
	}
}

func benchLitsCurves(b *testing.B, sizeIdx int) {
	b.ReportAllocs()
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.LitsSDCurves(sc, sizeIdx, 3)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, func() { res.Print(os.Stdout) })
	}
}

func BenchmarkFig7LitsSDvsSF(b *testing.B) { benchLitsCurves(b, 0) }
func BenchmarkFig8LitsSDvsSF(b *testing.B) { benchLitsCurves(b, 1) }
func BenchmarkFig9LitsSDvsSF(b *testing.B) { benchLitsCurves(b, 2) }

func benchDTCurves(b *testing.B, sizeIdx int) {
	b.ReportAllocs()
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.DTSDCurves(sc, sizeIdx, 4)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, func() { res.Print(os.Stdout) })
	}
}

func BenchmarkFig10DTSDvsSF(b *testing.B) { benchDTCurves(b, 0) }
func BenchmarkFig11DTSDvsSF(b *testing.B) { benchDTCurves(b, 1) }
func BenchmarkFig12DTSDvsSF(b *testing.B) { benchDTCurves(b, 2) }

func BenchmarkFig13LitsDeviationTable(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig13(sc, 5)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, func() { res.Print(os.Stdout) })
	}
}

func BenchmarkFig14DTDeviationTable(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig14(sc, 6)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, func() { res.Print(os.Stdout) })
	}
}

func BenchmarkFig15MEvsDeviation(b *testing.B) {
	b.ReportAllocs()
	sc := benchScale(b)
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig15(sc, 7)
		if err != nil {
			b.Fatal(err)
		}
		printFirst(b, func() { res.Print(os.Stdout) })
	}
}

// ---- ablation benchmarks (design choices from DESIGN.md §5) ----

func ablationTxnData(b *testing.B, n int) (*txn.Dataset, *txn.Dataset) {
	b.Helper()
	cfg := quest.DefaultConfig(n)
	cfg.NumItems = 500
	cfg.NumPatterns = 400
	cfg.AvgTxnLen = 10
	cfg.Seed = 9
	d1, err := quest.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	cfg.Seed = 10
	d2, err := quest.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return d1, d2
}

// Trie-based subset counting vs the brute-force scan (Apriori measure
// computation; the single-scan GCR extension of Section 3.3.1 rides on it).
// Forced to the trie backend so the ablation keeps measuring the trie now
// that the default counter dispatches by density.
func BenchmarkAblationCountingTrie(b *testing.B) {
	b.ReportAllocs()
	d, _ := ablationTxnData(b, 5000)
	sets := randomItemsets(200, 500, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apriori.CountItemsetsTrie(d, sets, 1)
	}
}

// Sharded trie counting vs the serial trie scan above: per-shard count
// vectors merged in shard order (bit-identical results; the speedup is the
// point). Compare against BenchmarkAblationCountingTrie.
func BenchmarkParallelCountingTrie(b *testing.B) {
	b.ReportAllocs()
	d, _ := ablationTxnData(b, 5000)
	sets := randomItemsets(200, 500, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apriori.CountItemsetsTrie(d, sets, 0)
	}
}

// ---- counting-backend benchmarks (trie vs vertical bitmap) ----

// countBenchData is the quick-scale dense workload of the backend pair:
// short universe, long transactions, a realistic GCR-sized candidate
// collection. Dense data is the trie's worst case (deep descents on every
// transaction) and the bitmap's best (high popcount yield per word) — the
// regime auto selects the bitmap for.
func countBenchData(b *testing.B) (*txn.Dataset, []apriori.Itemset) {
	b.Helper()
	cfg := quest.DefaultConfig(4000)
	cfg.NumItems = 250
	cfg.NumPatterns = 300
	cfg.AvgTxnLen = 25
	cfg.Seed = 21
	d, err := quest.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return d, randomItemsets(400, 250, 22)
}

// BenchmarkCountTrie / BenchmarkCountBitmap are the headline pair of the
// vertical-index PR: identical workload, identical (bit-for-bit) counts,
// different backend. Both run serially so the comparison isolates the
// algorithm, not the worker pool.
func BenchmarkCountTrie(b *testing.B) {
	b.ReportAllocs()
	d, sets := countBenchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apriori.CountItemsetsTrie(d, sets, 1)
	}
}

func BenchmarkCountBitmap(b *testing.B) {
	b.ReportAllocs()
	d, sets := countBenchData(b)
	apriori.VerticalIndexOf(d, 0) // build outside the timer; memoized thereafter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apriori.CountItemsetsBitmap(d, sets, 1)
	}
}

// BenchmarkCountBitmapBuild prices the one-time index construction the
// memo amortizes across scans.
func BenchmarkCountBitmapBuild(b *testing.B) {
	b.ReportAllocs()
	d, _ := countBenchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apriori.BuildVerticalIndex(d, 0)
	}
}

// BenchmarkMineTrie / BenchmarkMineVertical are the mining twin of the
// counting pair above: identical workload, bit-identical frequent sets,
// levelwise trie passes vs the intersection-driven vertical DFS. Both run
// serially so the comparison isolates the algorithm.
func BenchmarkMineTrie(b *testing.B) {
	b.ReportAllocs()
	d, _ := countBenchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := apriori.MineWith(d, 0.1, 1, apriori.CounterTrie); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMineVertical(b *testing.B) {
	b.ReportAllocs()
	d, _ := countBenchData(b)
	apriori.VerticalIndexOf(d, 0) // build outside the timer; memoized thereafter
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := apriori.MineVertical(d, 0.1, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationCountingBrute(b *testing.B) {
	b.ReportAllocs()
	d, _ := ablationTxnData(b, 5000)
	sets := randomItemsets(200, 500, 11)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		apriori.CountItemsetsBrute(d, sets)
	}
}

func randomItemsets(count, universe int, seed int64) []apriori.Itemset {
	rng := rand.New(rand.NewSource(seed))
	out := make([]apriori.Itemset, count)
	for i := range out {
		l := 1 + rng.Intn(3)
		items := make([]txn.Item, l)
		for j := range items {
			items[j] = txn.Item(rng.Intn(universe))
		}
		out[i] = apriori.NewItemset(items...)
	}
	return out
}

// delta (scans both datasets) vs delta* (models only, Theorem 4.2(3)): the
// bound is the paper's answer for interactive exploration (Figure 13's last
// two columns).
func BenchmarkAblationLitsDeviationScan(b *testing.B) {
	b.ReportAllocs()
	d1, d2 := ablationTxnData(b, 10000)
	m1, err := core.MineLits(d1, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	m2, err := core.MineLits(d2, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Deviation(core.Lits(0.01), m1, m2, d1, d2, core.AbsoluteDiff, core.Sum, core.WithParallelism(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// Sharded GCR support counting vs the serial scan above (Fig-13-scale
// lits workload; bit-identical deviations). Compare against
// BenchmarkAblationLitsDeviationScan.
func BenchmarkParallelLitsDeviationScan(b *testing.B) {
	b.ReportAllocs()
	d1, d2 := ablationTxnData(b, 10000)
	m1, err := core.MineLits(d1, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	m2, err := core.MineLits(d2, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Deviation(core.Lits(0.01), m1, m2, d1, d2, core.AbsoluteDiff, core.Sum); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationLitsUpperBoundNoScan(b *testing.B) {
	b.ReportAllocs()
	d1, d2 := ablationTxnData(b, 10000)
	m1, err := core.MineLits(d1, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	m2, err := core.MineLits(d2, 0.01)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.LitsUpperBound(m1, m2, core.Sum)
	}
}

// dt GCR measures by tree-routing (one scan, O(depth) per tuple) vs by
// testing every tuple against every overlay region.
func ablationDTData(b *testing.B) (*focus.Dataset, *focus.Dataset, *core.DTModel, *core.DTModel) {
	b.Helper()
	d1, err := classgen.Generate(classgen.Config{NumTuples: 10000, Function: classgen.F2, Seed: 12})
	if err != nil {
		b.Fatal(err)
	}
	d2, err := classgen.Generate(classgen.Config{NumTuples: 10000, Function: classgen.F3, Seed: 13})
	if err != nil {
		b.Fatal(err)
	}
	m1, err := core.BuildDTModel(d1, ablationDTConfig)
	if err != nil {
		b.Fatal(err)
	}
	m2, err := core.BuildDTModel(d2, ablationDTConfig)
	if err != nil {
		b.Fatal(err)
	}
	return d1, d2, m1, m2
}

var ablationDTConfig = dtree.Config{MaxDepth: 8, MinLeaf: 50}

func BenchmarkAblationDTDeviationRouted(b *testing.B) {
	b.ReportAllocs()
	d1, d2, m1, m2 := ablationDTData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Deviation(core.DT(ablationDTConfig), m1, m2, d1, d2, core.AbsoluteDiff, core.Sum, core.WithParallelism(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// Sharded tree-routing vs the serial routed scan above (Fig-14-scale dt
// workload; bit-identical deviations). Compare against
// BenchmarkAblationDTDeviationRouted.
func BenchmarkParallelDTDeviationRouted(b *testing.B) {
	b.ReportAllocs()
	d1, d2, m1, m2 := ablationDTData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Deviation(core.DT(ablationDTConfig), m1, m2, d1, d2, core.AbsoluteDiff, core.Sum); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkAblationDTDeviationGeometric(b *testing.B) {
	b.ReportAllocs()
	d1, d2, m1, m2 := ablationDTData(b)
	gcr, err := core.DTGCRRegions(m1, m2)
	if err != nil {
		b.Fatal(err)
	}
	boxes := make([]*focus.Box, len(gcr))
	for i, r := range gcr {
		boxes[i] = r.Box.ConstrainClass(r.Class)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.DTDeviationOverRegions(boxes, d1, d2, core.AbsoluteDiff, core.Sum)
	}
}

// Apriori mining itself, the substrate cost every lits experiment pays.
func BenchmarkAprioriMine(b *testing.B) {
	b.ReportAllocs()
	d, _ := ablationTxnData(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := apriori.Mine(d, 0.01); err != nil {
			b.Fatal(err)
		}
	}
}

// Sharded per-pass candidate counting vs the serial miner above
// (bit-identical frequent sets). Compare against BenchmarkAprioriMine.
func BenchmarkParallelAprioriMine(b *testing.B) {
	b.ReportAllocs()
	d, _ := ablationTxnData(b, 10000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := apriori.MineP(d, 0.01, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// dtreeBenchData is the shared workload of the tree-construction pair: the
// paper's synthetic person data at experiment scale.
func dtreeBenchData(b *testing.B) *dataset.Dataset {
	b.Helper()
	d, err := classgen.Generate(classgen.Config{NumTuples: 10000, Function: classgen.F2, Seed: 14})
	if err != nil {
		b.Fatal(err)
	}
	return d
}

// CART tree construction with the reference per-node re-sorting builder —
// the substrate cost every dt experiment used to pay. Kept as the baseline
// of the before/after pair; compare against BenchmarkDTreeBuildFast.
func BenchmarkDTreeBuildNaive(b *testing.B) {
	b.ReportAllocs()
	d := dtreeBenchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dtree.BuildNaive(d, dtree.Config{MaxDepth: 8, MinLeaf: 50}); err != nil {
			b.Fatal(err)
		}
	}
}

// The presorted-attribute-list engine with parallel split search on the
// identical workload (bit-identical output tree). Compare against
// BenchmarkDTreeBuildNaive.
func BenchmarkDTreeBuildFast(b *testing.B) {
	b.ReportAllocs()
	d := dtreeBenchData(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dtree.BuildP(d, dtree.Config{MaxDepth: 8, MinLeaf: 50}, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// The bootstrap qualification step (Section 3.4), the cost of turning a
// deviation into a significance.
func BenchmarkQualifyLits(b *testing.B) {
	b.ReportAllocs()
	d1, d2 := ablationTxnData(b, 4000)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Qualify(core.Lits(0.02), d1, d2, core.AbsoluteDiff, core.Sum,
			core.WithReplicates(11), core.WithSeed(15)); err != nil {
			b.Fatal(err)
		}
	}
}

var sinkFloat float64

// Baseline: raw deviation arithmetic over a prepared GCR (Definition 3.5),
// isolating the framework overhead from mining/scanning.
func BenchmarkDeviation1Arithmetic(b *testing.B) {
	b.ReportAllocs()
	regions := make([]core.MeasuredRegion, 10000)
	rng := rand.New(rand.NewSource(16))
	for i := range regions {
		regions[i] = core.MeasuredRegion{Alpha1: float64(rng.Intn(1000)), Alpha2: float64(rng.Intn(1000))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkFloat = core.Deviation1(regions, 1e6, 1e6, core.AbsoluteDiff, core.Sum)
	}
}
