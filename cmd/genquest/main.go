// Command genquest generates synthetic market-basket data with the
// reimplemented IBM Quest generator (Agrawal & Srikant, VLDB 1994) and
// writes it in the line-oriented format read by cmd/focus.
//
// Usage:
//
//	genquest -name 0.5M.20L.1K.4000pats.4patlen -seed 7 -o store.txns
//	genquest -txns 100000 -items 1000 -pats 4000 -patlen 4 -tl 20 -o d.txns
package main

import (
	"flag"
	"fmt"
	"os"

	"focus/internal/quest"
)

func main() {
	var (
		name   = flag.String("name", "", "dataset name in the paper's convention (overrides the numeric flags)")
		txns   = flag.Int("txns", 100000, "number of transactions (N)")
		tl     = flag.Float64("tl", 20, "average transaction length")
		items  = flag.Int("items", 1000, "item universe size |I|")
		pats   = flag.Int("pats", 4000, "number of potential patterns |L|")
		patlen = flag.Float64("patlen", 4, "average pattern length")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var cfg quest.Config
	if *name != "" {
		parsed, err := quest.ParseName(*name)
		if err != nil {
			fatal(err)
		}
		cfg = parsed
	} else {
		cfg = quest.DefaultConfig(*txns)
		cfg.AvgTxnLen = *tl
		cfg.NumItems = *items
		cfg.NumPatterns = *pats
		cfg.AvgPatternLen = *patlen
	}
	cfg.Seed = *seed

	d, err := quest.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := d.Write(w); err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "generated %s: %d transactions, avg length %.2f\n", cfg.Name(), d.Len(), d.AvgLen())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genquest:", err)
	os.Exit(1)
}
