package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// fleetSession is a qualified cluster session: qualification consumes a
// per-report RNG stream, so byte-identical reports across kills and
// migrations prove the recovered/migrated monitors resume the exact seed
// sequence, not just the window counts.
const fleetSession = `{
	"name": %q,
	"model": "cluster",
	"schema": {"attrs": [{"name": "x", "kind": "numeric", "min": 0, "max": 100}]},
	"grid_attrs": ["x"],
	"grid_bins": 4,
	"min_density": 0.05,
	"window": 2,
	"threshold": 0.5,
	"qualify": true,
	"replicates": 19,
	"seed": 11,
	"reference": [%s]
}`

func fleetRows(shift int) string {
	var rows []string
	for i := 0; i < 40; i++ {
		rows = append(rows, fmt.Sprintf(`{"x": %d}`, ((i+shift)%4)*25+10))
	}
	return strings.Join(rows, ",")
}

// proc is one running focusd or focusrouter child.
type proc struct {
	cmd  *exec.Cmd
	base string
	addr string
}

// startProc boots a binary, waits for its "NAME listening on ADDR" line
// and returns the process handle.
func startProc(t *testing.T, bin, name string, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("StdoutPipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %s: %v", name, err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	buf := make([]byte, 256)
	line := ""
	for !strings.Contains(line, "\n") {
		n, err := stdout.Read(buf)
		if n > 0 {
			line += string(buf[:n])
		}
		if err != nil {
			t.Fatalf("reading %s startup line: %v (got %q)", name, err, line)
		}
	}
	line = line[:strings.Index(line, "\n")]
	prefix := name + " listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected %s startup line %q", name, line)
	}
	go io.Copy(io.Discard, stdout)
	addr := strings.TrimPrefix(line, prefix)
	return &proc{cmd: cmd, base: "http://" + addr, addr: addr}
}

// request issues a request against the process and returns status + body.
func (p *proc) request(t *testing.T, method, path, body string) (int, string) {
	t.Helper()
	client := &http.Client{Timeout: 30 * time.Second}
	req, err := http.NewRequest(method, p.base+path, strings.NewReader(body))
	if err != nil {
		t.Fatalf("NewRequest: %v", err)
	}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("%s %s: reading body: %v", method, path, err)
	}
	return resp.StatusCode, string(out)
}

// must issues a request and fails the test on a non-2xx answer.
func (p *proc) must(t *testing.T, method, path, body string) string {
	t.Helper()
	status, out := p.request(t, method, path, body)
	if status >= 300 {
		t.Fatalf("%s %s: status %d: %s", method, path, status, out)
	}
	return out
}

// memberSessions lists the session names a member hosts, queried directly.
func memberSessions(t *testing.T, p *proc) []string {
	t.Helper()
	var list struct {
		Sessions []struct {
			Name string `json:"name"`
		} `json:"sessions"`
	}
	if err := json.Unmarshal([]byte(p.must(t, http.MethodGet, "/v1/sessions", "")), &list); err != nil {
		t.Fatalf("decoding member list: %v", err)
	}
	var names []string
	for _, s := range list.Sessions {
		names = append(names, s.Name)
	}
	return names
}

// TestFleetEndToEnd is the multi-node acceptance test: three durable
// focusd members behind a focusrouter, sessions created through the
// router landing on distinct shards, one member SIGKILLed mid-stream and
// restarted on its data directory (WAL recovery), another gracefully
// retired (snapshot-transfer migration) — and every session's state and
// report bodies must end byte-identical to an uninterrupted single-node
// in-memory run of the same batch streams.
func TestFleetEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary fleet test in -short mode")
	}
	dir := t.TempDir()
	focusd := filepath.Join(dir, "focusd")
	focusrouter := filepath.Join(dir, "focusrouter")
	for bin, pkg := range map[string]string{focusd: "focus/cmd/focusd", focusrouter: "focus/cmd/focusrouter"} {
		build := exec.Command("go", "build", "-o", bin, pkg)
		build.Stderr = os.Stderr
		if err := build.Run(); err != nil {
			t.Fatalf("go build %s: %v", pkg, err)
		}
	}

	const nSessions = 10
	const killAfter = 3
	names := make([]string, nSessions)
	creates := make([]string, nSessions)
	batches := make([][]string, nSessions)
	for i := range names {
		names[i] = fmt.Sprintf("sess-%02d", i)
		creates[i] = fmt.Sprintf(fleetSession, names[i], fleetRows(i%4))
		batches[i] = make([]string, 6)
		for e := range batches[i] {
			batches[i][e] = fmt.Sprintf(`{"epoch": %d, "rows": [%s]}`, e+1, fleetRows((i+e)%4))
		}
	}

	// The uninterrupted control: one in-memory focusd fed every stream.
	control := startProc(t, focusd, "focusd", "-addr", "127.0.0.1:0")
	for i, name := range names {
		control.must(t, http.MethodPost, "/v1/sessions", creates[i])
		for _, b := range batches[i] {
			control.must(t, http.MethodPost, "/v1/sessions/"+name+"/batches", b)
		}
	}
	wantState := make(map[string]string, nSessions)
	wantReports := make(map[string]string, nSessions)
	for _, name := range names {
		wantState[name] = control.must(t, http.MethodGet, "/v1/sessions/"+name, "")
		wantReports[name] = control.must(t, http.MethodGet, "/v1/sessions/"+name+"/reports", "")
	}

	// The fleet: three durable members behind a router.
	members := make([]*proc, 3)
	dataDirs := make([]string, 3)
	for i := range members {
		dataDirs[i] = filepath.Join(dir, fmt.Sprintf("member%d", i))
		members[i] = startProc(t, focusd, "focusd",
			"-addr", "127.0.0.1:0", "-data", dataDirs[i], "-compact-every", "2")
	}
	router := startProc(t, focusrouter, "focusrouter", "-addr", "127.0.0.1:0",
		"-members", members[0].addr+","+members[1].addr+","+members[2].addr)

	for i, name := range names {
		router.must(t, http.MethodPost, "/v1/sessions", creates[i])
		for _, b := range batches[i][:killAfter] {
			router.must(t, http.MethodPost, "/v1/sessions/"+name+"/batches", b)
		}
	}

	// Placement: every session on exactly one shard, fleet spread over >1.
	hosts := make(map[string]int)
	shardsUsed := 0
	for i, m := range members {
		hosted := memberSessions(t, m)
		if len(hosted) > 0 {
			shardsUsed++
		}
		for _, name := range hosted {
			if prev, ok := hosts[name]; ok {
				t.Fatalf("session %s hosted on members %d and %d", name, prev, i)
			}
			hosts[name] = i
		}
	}
	if len(hosts) != nSessions {
		t.Fatalf("fleet hosts %d sessions, want %d", len(hosts), nSessions)
	}
	if shardsUsed < 2 {
		t.Fatalf("all sessions landed on one member; want spread across shards")
	}

	// SIGKILL the member hosting sess-00: no shutdown hook runs.
	victim := hosts[names[0]]
	victimSessions := memberSessions(t, members[victim])
	if err := members[victim].cmd.Process.Kill(); err != nil {
		t.Fatalf("killing member %d: %v", victim, err)
	}
	members[victim].cmd.Wait()

	// The dead shard's sessions answer 502 through the router; the fleet
	// list degrades to naming the unreachable member instead of failing.
	if status, _ := router.request(t, http.MethodPost,
		"/v1/sessions/"+names[0]+"/batches", batches[0][killAfter]); status != http.StatusBadGateway {
		t.Fatalf("feed to killed member: status %d, want 502", status)
	}
	var degraded struct {
		Sessions    []json.RawMessage `json:"sessions"`
		Unreachable []string          `json:"unreachable"`
	}
	if err := json.Unmarshal([]byte(router.must(t, http.MethodGet, "/v1/sessions", "")), &degraded); err != nil {
		t.Fatalf("decoding degraded list: %v", err)
	}
	if len(degraded.Unreachable) != 1 || degraded.Unreachable[0] != members[victim].addr {
		t.Fatalf("degraded list unreachable = %v, want [%s]", degraded.Unreachable, members[victim].addr)
	}
	if len(degraded.Sessions) != nSessions-len(victimSessions) {
		t.Fatalf("degraded list has %d sessions, want %d", len(degraded.Sessions), nSessions-len(victimSessions))
	}

	// Restart the member on the same address and data directory: WAL
	// replay recovers its sessions; the router needs no reconfiguration.
	members[victim] = startProc(t, focusd, "focusd",
		"-addr", members[victim].addr, "-data", dataDirs[victim], "-compact-every", "2")
	recovered := memberSessions(t, members[victim])
	if len(recovered) != len(victimSessions) {
		t.Fatalf("restarted member recovered %d sessions %v, want %d %v",
			len(recovered), recovered, len(victimSessions), victimSessions)
	}

	// Finish every stream through the router.
	for i, name := range names {
		for _, b := range batches[i][killAfter:] {
			router.must(t, http.MethodPost, "/v1/sessions/"+name+"/batches", b)
		}
	}

	// Gracefully retire a different member: its sessions migrate to
	// survivors by snapshot transfer.
	retiree := -1
	for i := range members {
		if i != victim && len(memberSessions(t, members[i])) > 0 {
			retiree = i
			break
		}
	}
	if retiree < 0 {
		t.Fatalf("no second member hosts sessions; cannot exercise migration")
	}
	retireeSessions := memberSessions(t, members[retiree])
	var removed struct {
		Migrated int `json:"migrated"`
	}
	if err := json.Unmarshal([]byte(router.must(t, http.MethodDelete,
		"/v1/fleet/members/"+members[retiree].addr, "")), &removed); err != nil {
		t.Fatalf("decoding remove response: %v", err)
	}
	if removed.Migrated != len(retireeSessions) {
		t.Fatalf("migrated %d sessions off retiring member, want %d", removed.Migrated, len(retireeSessions))
	}
	if left := memberSessions(t, members[retiree]); len(left) != 0 {
		t.Fatalf("retired member still hosts %v", left)
	}

	// Every session — recovered, migrated or untouched — must match the
	// uninterrupted single-node control byte for byte.
	for _, name := range names {
		if got := router.must(t, http.MethodGet, "/v1/sessions/"+name, ""); got != wantState[name] {
			t.Errorf("session %s state diverges\n got: %s\nwant: %s", name, got, wantState[name])
		}
		if got := router.must(t, http.MethodGet, "/v1/sessions/"+name+"/reports", ""); got != wantReports[name] {
			t.Errorf("session %s reports diverge\n got: %s\nwant: %s", name, got, wantReports[name])
		}
	}

	// The fleet views settle back to a clean state: all sessions listed,
	// nobody unreachable, merged summary counts every session.
	var final struct {
		Sessions    []json.RawMessage `json:"sessions"`
		Unreachable []string          `json:"unreachable"`
	}
	if err := json.Unmarshal([]byte(router.must(t, http.MethodGet, "/v1/sessions", "")), &final); err != nil {
		t.Fatalf("decoding final list: %v", err)
	}
	if len(final.Sessions) != nSessions || len(final.Unreachable) != 0 {
		t.Fatalf("final list: %d sessions, unreachable %v; want %d and none",
			len(final.Sessions), final.Unreachable, nSessions)
	}
	var sum struct {
		Sessions int `json:"sessions"`
		Reports  int `json:"reports"`
	}
	if err := json.Unmarshal([]byte(router.must(t, http.MethodGet, "/v1/summary", "")), &sum); err != nil {
		t.Fatalf("decoding fleet summary: %v", err)
	}
	if sum.Sessions != nSessions {
		t.Fatalf("fleet summary sessions = %d, want %d", sum.Sessions, nSessions)
	}
}
