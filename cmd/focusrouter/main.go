// Command focusrouter fronts a fleet of focusd members with the familiar
// single-node HTTP API. Sessions are placed by consistent hashing on the
// session name (so every member owns a stable slice of the namespace and
// membership changes move only the minimal set of sessions), per-session
// requests are proxied to the owning shard, and fleet-wide views — the
// session list and the drift summary — are scatter-gathered: every member
// ships its own mergeable summary and the router merges them centrally,
// so raw rows never leave their shard.
//
//	focusrouter -addr 127.0.0.1:8090 -members 127.0.0.1:8081,127.0.0.1:8082
//
// Joining a member (POST /v1/fleet/members) or retiring one (DELETE
// /v1/fleet/members/{addr}) re-homes the affected sessions by
// snapshot-transfer migration: the session drains on its old owner, its
// sealed state ships to the new one, and reports resume bit-identically
// there. The endpoint table lives on fleet.Router.Handler; the README's
// "Multi-node serving" section walks through the API with curl.
//
// On startup focusrouter prints one line, "focusrouter listening on ADDR",
// so scripts can bind port 0 and discover the address.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"focus/internal/fleet"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "focusrouter:", err)
		os.Exit(1)
	}
}

// run executes the router until SIGINT/SIGTERM, writing the listening line
// to stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("focusrouter", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8090", "listen address (use port 0 for an ephemeral port)")
	members := fs.String("members", "", "comma-separated focusd member addresses (host:port)")
	vnodes := fs.Int("vnodes", fleet.DefaultVirtualNodes, "virtual nodes per member on the hash ring")
	timeout := fs.Duration("member-timeout", 30*time.Second, "per-request timeout for member calls")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var addrs []string
	for _, a := range strings.Split(*members, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	if len(addrs) == 0 {
		return errors.New("at least one -members address is required")
	}

	client := &http.Client{Timeout: *timeout}
	rt := fleet.NewRouter(addrs, *vnodes, client)
	for _, m := range rt.Members() {
		if !m.Healthy() {
			fmt.Fprintf(os.Stderr, "focusrouter: member %s is not answering healthy (keeping it on the ring)\n", m.Addr())
		}
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The listening line must stay first on stdout: scripts scan for it.
	fmt.Fprintf(stdout, "focusrouter listening on %s\n", ln.Addr())

	srv := &http.Server{
		Handler:           rt.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
