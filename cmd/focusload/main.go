// Command focusload drives a focus fleet through its router and measures
// router-path latency: N concurrent workers create monitor sessions and
// feed them batches, recording per-operation wall time and reporting
// p50/p95/p99 percentiles for creates and feeds separately, plus a
// log-scale latency histogram.
//
//	focusload -router http://127.0.0.1:8090 -sessions 32 -batches 50
//
// With -selfhost N the harness is self-contained: it boots N in-process
// focusd members and a router on loopback listeners (real HTTP round
// trips, no external processes) and drives that. `make bench` uses this
// mode, and with -bench the percentiles are printed in `go test -bench`
// format —
//
//	BenchmarkFleetFeedP99 160 184042 ns/op
//
// — so benchjson folds the fleet's serving latency into BENCH_focus.json
// next to the engine microbenchmarks, and the CI bench-delta artifact
// tracks it per PR.
//
// -rate caps total feed throughput (batches/sec across all workers);
// 0 means unthrottled.
package main

import (
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"time"

	"focus/internal/fleet"
	"focus/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "focusload:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("focusload", flag.ContinueOnError)
	router := fs.String("router", "", "base URL of a running focusrouter (e.g. http://127.0.0.1:8090)")
	selfhost := fs.Int("selfhost", 0, "boot this many in-process members + a router instead of targeting -router")
	sessions := fs.Int("sessions", 8, "sessions to create")
	batches := fs.Int("batches", 20, "batches to feed each session")
	rows := fs.Int("rows", 40, "rows per batch")
	concurrency := fs.Int("concurrency", 4, "concurrent workers")
	rate := fs.Float64("rate", 0, "target total feed rate in batches/sec (0 = unthrottled)")
	bench := fs.Bool("bench", false, "print percentiles in `go test -bench` format for benchjson")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if (*router == "") == (*selfhost == 0) {
		return fmt.Errorf("exactly one of -router and -selfhost is required")
	}
	if *sessions < 1 || *batches < 1 || *rows < 1 || *concurrency < 1 {
		return fmt.Errorf("-sessions, -batches, -rows and -concurrency must be positive")
	}

	base := *router
	if *selfhost > 0 {
		var stop func()
		var err error
		base, stop, err = selfhostFleet(*selfhost)
		if err != nil {
			return err
		}
		defer stop()
	}

	lo := &loader{
		base:    strings.TrimSuffix(base, "/"),
		client:  &http.Client{Timeout: 60 * time.Second},
		rows:    *rows,
		batches: *batches,
	}
	if *rate > 0 {
		lo.throttle = time.NewTicker(time.Duration(float64(time.Second) / *rate))
		defer lo.throttle.Stop()
	}

	start := time.Now()
	if err := lo.drive(*sessions, *concurrency); err != nil {
		return err
	}
	elapsed := time.Since(start)

	if *bench {
		// benchjson's input grammar: a pkg: header, then
		// "BenchmarkName iterations ns ns/op" lines.
		fmt.Fprintln(stdout, "pkg: focus/cmd/focusload")
		for _, group := range []struct {
			name    string
			samples []time.Duration
		}{{"Create", lo.creates}, {"Feed", lo.feeds}} {
			for _, pct := range []struct {
				label string
				q     float64
			}{{"P50", 0.50}, {"P95", 0.95}, {"P99", 0.99}} {
				fmt.Fprintf(stdout, "BenchmarkFleet%s%s %d %d ns/op\n",
					group.name, pct.label, len(group.samples), percentile(group.samples, pct.q).Nanoseconds())
			}
		}
		return nil
	}

	ops := len(lo.creates) + len(lo.feeds)
	fmt.Fprintf(stdout, "focusload: %d sessions x %d batches (%d rows each) through %s\n",
		*sessions, *batches, *rows, base)
	fmt.Fprintf(stdout, "%d ops in %v (%.1f ops/sec)\n", ops, elapsed.Round(time.Millisecond),
		float64(ops)/elapsed.Seconds())
	printStats(stdout, "create", lo.creates)
	printStats(stdout, "feed", lo.feeds)
	return nil
}

// loader drives the workload and records per-operation latencies.
type loader struct {
	base     string
	client   *http.Client
	rows     int
	batches  int
	throttle *time.Ticker // nil = unthrottled; shared across workers

	mu      sync.Mutex
	creates []time.Duration // guarded by mu
	feeds   []time.Duration // guarded by mu
}

// drive creates n sessions and feeds each its batch stream, spread over
// conc workers by session index.
func (lo *loader) drive(n, conc int) error {
	errs := make([]error, conc)
	var wg sync.WaitGroup
	for w := 0; w < conc; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := w; i < n; i += conc {
				if err := lo.driveSession(i); err != nil {
					errs[w] = err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// driveSession creates one session and feeds its whole batch stream.
func (lo *loader) driveSession(i int) error {
	name := fmt.Sprintf("load-%04d", i)
	elapsed, err := lo.post("/v1/sessions", sessionBody(name, lo.rows, i))
	if err != nil {
		return fmt.Errorf("create %s: %w", name, err)
	}
	lo.mu.Lock()
	lo.creates = append(lo.creates, elapsed)
	lo.mu.Unlock()
	for e := 1; e <= lo.batches; e++ {
		if lo.throttle != nil {
			<-lo.throttle.C
		}
		elapsed, err := lo.post("/v1/sessions/"+name+"/batches", batchBody(e, lo.rows, i+e))
		if err != nil {
			return fmt.Errorf("feed %s batch %d: %w", name, e, err)
		}
		lo.mu.Lock()
		lo.feeds = append(lo.feeds, elapsed)
		lo.mu.Unlock()
	}
	return nil
}

// post issues one timed POST and requires a 2xx answer.
func (lo *loader) post(path, body string) (time.Duration, error) {
	start := time.Now()
	resp, err := lo.client.Post(lo.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	out, _ := io.ReadAll(resp.Body)
	elapsed := time.Since(start)
	if resp.StatusCode >= 300 {
		return 0, fmt.Errorf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(out)))
	}
	return elapsed, nil
}

// sessionBody is the create payload: a 1-attribute cluster session whose
// reference spreads rows evenly over 4 grid cells.
func sessionBody(name string, rows, shift int) string {
	return fmt.Sprintf(`{
		"name": %q,
		"model": "cluster",
		"schema": {"attrs": [{"name": "x", "kind": "numeric", "min": 0, "max": 100}]},
		"grid_attrs": ["x"],
		"grid_bins": 4,
		"min_density": 0.05,
		"window": 2,
		"threshold": 0.5,
		"reference": %s
	}`, name, rowsJSON(rows, shift))
}

// batchBody is one feed payload.
func batchBody(epoch, rows, shift int) string {
	return fmt.Sprintf(`{"epoch": %d, "rows": %s}`, epoch, rowsJSON(rows, shift))
}

// rowsJSON rotates rows through the 4 grid cells, offset by shift, so
// consecutive batches drift deterministically.
func rowsJSON(rows, shift int) string {
	var sb strings.Builder
	sb.WriteByte('[')
	for i := 0; i < rows; i++ {
		if i > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, `{"x": %d}`, ((i+shift)%4)*25+10)
	}
	sb.WriteByte(']')
	return sb.String()
}

// percentile returns the q-th percentile of samples (nearest-rank).
func percentile(samples []time.Duration, q float64) time.Duration {
	if len(samples) == 0 {
		return 0
	}
	sorted := make([]time.Duration, len(samples))
	copy(sorted, samples)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	rank := int(q*float64(len(sorted))+0.5) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(sorted) {
		rank = len(sorted) - 1
	}
	return sorted[rank]
}

// printStats renders one operation class: count, percentiles and a
// doubling-bucket latency histogram.
func printStats(w io.Writer, label string, samples []time.Duration) {
	if len(samples) == 0 {
		return
	}
	fmt.Fprintf(w, "%-6s n=%d p50=%v p95=%v p99=%v max=%v\n", label, len(samples),
		percentile(samples, 0.50).Round(time.Microsecond),
		percentile(samples, 0.95).Round(time.Microsecond),
		percentile(samples, 0.99).Round(time.Microsecond),
		percentile(samples, 1.0).Round(time.Microsecond))
	buckets := make(map[int]int)
	for _, s := range samples {
		b := 0
		for d := s; d > 100*time.Microsecond; d /= 2 {
			b++
		}
		buckets[b]++
	}
	keys := make([]int, 0, len(buckets))
	for b := range buckets {
		keys = append(keys, b)
	}
	sort.Ints(keys)
	for _, b := range keys {
		lo := 100 * time.Microsecond * (1 << b) / 2
		hi := 100 * time.Microsecond * (1 << b)
		if b == 0 {
			lo = 0
		}
		fmt.Fprintf(w, "  %10v - %-10v %s (%d)\n", lo, hi, strings.Repeat("#", bar(buckets[b], len(samples))), buckets[b])
	}
}

// bar scales a bucket count to a 1..40 column bar.
func bar(count, total int) int {
	n := count * 40 / total
	if n < 1 {
		n = 1
	}
	return n
}

// selfhostFleet boots n in-memory focusd members and a router over them,
// all on loopback listeners in this process, and returns the router's base
// URL plus a shutdown function. The round trips are real HTTP over TCP —
// the same path a production router serves — just without the process
// boundary.
func selfhostFleet(n int) (string, func(), error) {
	var stops []func()
	stop := func() {
		for _, fn := range stops {
			fn()
		}
	}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			stop()
			return "", nil, err
		}
		srv := &http.Server{Handler: serve.NewRegistry().Handler()}
		go srv.Serve(ln) //nolint:errcheck
		stops = append(stops, func() { srv.Close() })
		addrs[i] = ln.Addr().String()
	}
	rt := fleet.NewRouter(addrs, 0, nil)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		stop()
		return "", nil, err
	}
	srv := &http.Server{Handler: rt.Handler()}
	go srv.Serve(ln) //nolint:errcheck
	stops = append(stops, func() { srv.Close() })
	return "http://" + ln.Addr().String(), stop, nil
}
