package main

import (
	"strings"
	"testing"
)

// TestFocusloadSelfhostBench runs the self-contained harness end to end
// and checks the -bench output parses as benchjson input: a pkg header
// plus one line per percentile with positive latencies and the right
// sample counts.
func TestFocusloadSelfhostBench(t *testing.T) {
	var out strings.Builder
	err := run([]string{"-selfhost", "2", "-sessions", "4", "-batches", "3", "-concurrency", "2", "-bench"}, &out)
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	lines := strings.Split(strings.TrimSpace(out.String()), "\n")
	if lines[0] != "pkg: focus/cmd/focusload" {
		t.Fatalf("first line %q, want pkg header", lines[0])
	}
	want := map[string]string{
		"BenchmarkFleetCreateP50": "4",
		"BenchmarkFleetCreateP95": "4",
		"BenchmarkFleetCreateP99": "4",
		"BenchmarkFleetFeedP50":   "12",
		"BenchmarkFleetFeedP95":   "12",
		"BenchmarkFleetFeedP99":   "12",
	}
	if len(lines) != 1+len(want) {
		t.Fatalf("got %d lines, want %d:\n%s", len(lines), 1+len(want), out.String())
	}
	for _, line := range lines[1:] {
		fields := strings.Fields(line)
		if len(fields) != 4 || fields[3] != "ns/op" {
			t.Fatalf("malformed bench line %q", line)
		}
		samples, ok := want[fields[0]]
		if !ok {
			t.Fatalf("unexpected benchmark %q", fields[0])
		}
		delete(want, fields[0])
		if fields[1] != samples {
			t.Fatalf("%s has %s samples, want %s", fields[0], fields[1], samples)
		}
		if strings.HasPrefix(fields[2], "-") || fields[2] == "0" {
			t.Fatalf("%s latency %s not positive", fields[0], fields[2])
		}
	}
	if len(want) != 0 {
		t.Fatalf("missing benchmarks: %v", want)
	}
}

// TestFocusloadHumanOutput checks the default (non-bench) report carries
// the percentile summary for both operation classes.
func TestFocusloadHumanOutput(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-selfhost", "2", "-sessions", "2", "-batches", "2"}, &out); err != nil {
		t.Fatalf("run: %v", err)
	}
	for _, needle := range []string{"create n=2", "feed   n=4", "p50=", "p99="} {
		if !strings.Contains(out.String(), needle) {
			t.Fatalf("output missing %q:\n%s", needle, out.String())
		}
	}
}

// TestFocusloadFlagValidation checks the mode flags are mutually
// exclusive and required.
func TestFocusloadFlagValidation(t *testing.T) {
	var out strings.Builder
	if err := run([]string{}, &out); err == nil {
		t.Fatalf("no mode flags: want error")
	}
	if err := run([]string{"-router", "http://x", "-selfhost", "2"}, &out); err == nil {
		t.Fatalf("both mode flags: want error")
	}
	if err := run([]string{"-selfhost", "2", "-sessions", "0"}, &out); err == nil {
		t.Fatalf("zero sessions: want error")
	}
}
