// Command benchjson converts `go test -bench` output on stdin into the
// machine-readable benchmark trajectory BENCH_focus.json on stdout: a JSON
// object mapping each benchmark's package-qualified name to its ns/op and,
// when -benchmem was set, B/op and allocs/op. CI runs it after `make bench`
// and uploads the file as an artifact, so per-PR performance history is one
// download away.
//
//	go test -run XXX -bench . -benchmem ./... | benchjson > BENCH_focus.json
//
// The -require flag takes a comma-separated list of benchmark names; if any
// of them is missing from the parsed results, benchjson fails after writing
// the JSON. CI's bench-delta step uses it to pin the benchmarks a PR
// promises (e.g. the counting-backend pair), so a renamed or deleted
// benchmark fails loudly instead of silently vanishing from the trajectory.
//
// The -order flag takes a comma-separated list of "Faster<=Slower" pairs
// and fails (after writing the JSON) when the left benchmark's ns/op
// exceeds the right's. CI uses it to pin performance *relationships* the
// repo promises — e.g. that the incremental monitor path beats rebuilding
// from scratch — so a regression that silently inverts the trade-off a
// subsystem exists for fails the build even though both numbers are
// "valid".
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

// result is the per-benchmark record.
type result struct {
	NsPerOp     float64  `json:"ns_per_op"`
	BytesPerOp  *float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	Iterations  int64    `json:"iterations"`
}

func main() {
	require := flag.String("require", "", "comma-separated benchmark names that must be present")
	order := flag.String("order", "", `comma-separated "Faster<=Slower" ns/op orderings that must hold`)
	flag.Parse()
	if err := run(os.Stdin, os.Stdout, splitRequire(*require), splitRequire(*order)); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// splitRequire parses the -require list, dropping empty entries.
func splitRequire(s string) []string {
	var out []string
	for _, name := range strings.Split(s, ",") {
		if name = strings.TrimSpace(name); name != "" {
			out = append(out, name)
		}
	}
	return out
}

func run(r io.Reader, w io.Writer, require, order []string) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	results := make(map[string]result)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg: "); ok {
			pkg = rest
			continue
		}
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// BenchmarkName-8  N  ns/op-value ns/op  [B/op-value B/op  allocs-value allocs/op]
		if len(fields) < 4 || fields[3] != "ns/op" {
			continue
		}
		// Keep the name verbatim (including any -GOMAXPROCS suffix):
		// stripping a trailing -<digits> would collapse parameterized
		// sub-benchmarks like rows-1000 vs rows-20000 into one key on
		// runners where go test emits no suffix.
		name := fields[0]
		if pkg != "" {
			name = pkg + "." + name
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		ns, err := strconv.ParseFloat(fields[2], 64)
		if err != nil {
			continue
		}
		res := result{NsPerOp: ns, Iterations: iters}
		for i := 4; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			switch fields[i+1] {
			case "B/op":
				res.BytesPerOp = &v
			case "allocs/op":
				res.AllocsPerOp = &v
			}
		}
		results[name] = res
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(results) == 0 {
		return fmt.Errorf("no benchmark lines found on stdin")
	}
	// A sorted rendering keeps artifact diffs stable across runs.
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	bw := bufio.NewWriter(w)
	fmt.Fprintln(bw, "{")
	for i, name := range names {
		rec, err := json.Marshal(results[name])
		if err != nil {
			return err
		}
		comma := ","
		if i == len(names)-1 {
			comma = ""
		}
		key, err := json.Marshal(name)
		if err != nil {
			return err
		}
		fmt.Fprintf(bw, "  %s: %s%s\n", key, rec, comma)
	}
	fmt.Fprintln(bw, "}")
	if err := bw.Flush(); err != nil {
		return err
	}
	var missing []string
	for _, want := range require {
		if len(resolve(results, want)) == 0 {
			missing = append(missing, want)
		}
	}
	if len(missing) > 0 {
		return fmt.Errorf("required benchmarks missing from input: %s", strings.Join(missing, ", "))
	}
	return checkOrder(results, order)
}

// resolve returns the result keys a name addresses: an exact key match, or
// a match on the benchmark-name component (keys are
// "pkg.BenchmarkName-GOMAXPROCS").
func resolve(results map[string]result, want string) []string {
	var keys []string
	for name := range results {
		base := name
		if i := strings.LastIndex(base, "."); i >= 0 {
			base = base[i+1:]
		}
		if i := strings.LastIndex(base, "-"); i >= 0 {
			base = base[:i]
		}
		if name == want || base == want {
			keys = append(keys, name)
		}
	}
	return keys
}

// checkOrder validates every "Faster<=Slower" pair against the parsed
// ns/op values. Each side must resolve to exactly one benchmark —
// ambiguity (a name matching several parameterized variants) is an error,
// not a guess.
func checkOrder(results map[string]result, order []string) error {
	for _, pair := range order {
		faster, slower, ok := strings.Cut(pair, "<=")
		if !ok {
			return fmt.Errorf("malformed -order pair %q (want Faster<=Slower)", pair)
		}
		faster, slower = strings.TrimSpace(faster), strings.TrimSpace(slower)
		fk, sk := resolve(results, faster), resolve(results, slower)
		if len(fk) != 1 {
			return fmt.Errorf("-order name %q matches %d benchmarks, want exactly 1", faster, len(fk))
		}
		if len(sk) != 1 {
			return fmt.Errorf("-order name %q matches %d benchmarks, want exactly 1", slower, len(sk))
		}
		fns, sns := results[fk[0]].NsPerOp, results[sk[0]].NsPerOp
		if fns > sns {
			return fmt.Errorf("ordering violated: %s (%.0f ns/op) > %s (%.0f ns/op)", fk[0], fns, sk[0], sns)
		}
	}
	return nil
}
