package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
)

func TestBenchJSON(t *testing.T) {
	input := `goos: linux
goarch: amd64
pkg: focus
BenchmarkPump/source-8         	       3	   1234567 ns/op	  650000 B/op	    1200 allocs/op
BenchmarkPump/readcsv-8        	       2	   2345678 ns/op	  950000 B/op	    2400 allocs/op
pkg: focus/internal/stream
BenchmarkWindowAdvance-8       	     100	     98765.5 ns/op
PASS
ok  	focus	1.2s
`
	var out bytes.Buffer
	if err := run(strings.NewReader(input), &out, nil, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	var got map[string]struct {
		NsPerOp     float64  `json:"ns_per_op"`
		BytesPerOp  *float64 `json:"bytes_per_op"`
		AllocsPerOp *float64 `json:"allocs_per_op"`
		Iterations  int64    `json:"iterations"`
	}
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("output is not JSON: %v\n%s", err, out.String())
	}
	if len(got) != 3 {
		t.Fatalf("parsed %d benchmarks, want 3: %v", len(got), got)
	}
	src, ok := got["focus.BenchmarkPump/source-8"]
	if !ok {
		t.Fatalf("missing package-qualified verbatim name: %v", got)
	}
	if src.NsPerOp != 1234567 || src.Iterations != 3 {
		t.Fatalf("source record %+v", src)
	}
	if src.BytesPerOp == nil || *src.BytesPerOp != 650000 || src.AllocsPerOp == nil || *src.AllocsPerOp != 1200 {
		t.Fatalf("source memory stats %+v", src)
	}
	win := got["focus/internal/stream.BenchmarkWindowAdvance-8"]
	if win.NsPerOp != 98765.5 || win.BytesPerOp != nil {
		t.Fatalf("no-benchmem record %+v", win)
	}
}

// TestBenchJSONParameterizedNames pins that sub-benchmarks whose names end
// in -<digits> stay distinct when go test emits no GOMAXPROCS suffix
// (single-proc runners).
func TestBenchJSONParameterizedNames(t *testing.T) {
	input := `pkg: focus
BenchmarkX/rows-1000      	      10	    111 ns/op
BenchmarkX/rows-20000     	      10	    222 ns/op
`
	var out bytes.Buffer
	if err := run(strings.NewReader(input), &out, nil, nil); err != nil {
		t.Fatalf("run: %v", err)
	}
	var got map[string]map[string]any
	if err := json.Unmarshal(out.Bytes(), &got); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	if len(got) != 2 {
		t.Fatalf("parameterized names collapsed: %v", got)
	}
}

func TestBenchJSONEmptyInput(t *testing.T) {
	var out bytes.Buffer
	if err := run(strings.NewReader("PASS\n"), &out, nil, nil); err == nil {
		t.Fatal("no benchmarks accepted silently")
	}
}

// TestBenchJSONRequire pins the bench-delta contract: required benchmarks
// match by bare name or full key, and a missing one fails the run.
func TestBenchJSONRequire(t *testing.T) {
	input := `pkg: focus
BenchmarkCountTrie-8     	      10	    111 ns/op
BenchmarkCountBitmap-8   	      10	     22 ns/op
`
	var out bytes.Buffer
	if err := run(strings.NewReader(input), &out, []string{"BenchmarkCountTrie", "BenchmarkCountBitmap"}, nil); err != nil {
		t.Fatalf("required benchmarks present, but run failed: %v", err)
	}
	out.Reset()
	if err := run(strings.NewReader(input), &out, []string{"focus.BenchmarkCountTrie-8"}, nil); err != nil {
		t.Fatalf("full-key requirement failed: %v", err)
	}
	out.Reset()
	err := run(strings.NewReader(input), &out, []string{"BenchmarkCountTrie", "BenchmarkGone"}, nil)
	if err == nil || !strings.Contains(err.Error(), "BenchmarkGone") {
		t.Fatalf("missing requirement not reported: %v", err)
	}
	// The JSON is still written before the failure, so the artifact upload
	// has something to show even on a failed delta.
	if !strings.Contains(out.String(), "BenchmarkCountTrie") {
		t.Fatal("JSON not written before the requirement failure")
	}
}

// TestBenchJSONOrder pins the ordering contract: a "Faster<=Slower" pair
// passes when ns/op agrees, fails loudly when inverted, and rejects names
// that are missing or ambiguous.
func TestBenchJSONOrder(t *testing.T) {
	input := `pkg: focus
BenchmarkIncremental-8   	      10	    111 ns/op
BenchmarkRebuild-8       	      10	    222 ns/op
BenchmarkX/rows-1000     	      10	     11 ns/op
BenchmarkX/rows-20000    	      10	     22 ns/op
`
	var out bytes.Buffer
	if err := run(strings.NewReader(input), &out, nil, []string{"BenchmarkIncremental<=BenchmarkRebuild"}); err != nil {
		t.Fatalf("holding ordering rejected: %v", err)
	}
	out.Reset()
	err := run(strings.NewReader(input), &out, nil, []string{"BenchmarkRebuild<=BenchmarkIncremental"})
	if err == nil || !strings.Contains(err.Error(), "ordering violated") {
		t.Fatalf("inverted ordering not reported: %v", err)
	}
	// The JSON still lands before the failure, like -require.
	if !strings.Contains(out.String(), "BenchmarkRebuild") {
		t.Fatal("JSON not written before the ordering failure")
	}
	out.Reset()
	if err := run(strings.NewReader(input), &out, nil, []string{"BenchmarkIncremental<=BenchmarkGone"}); err == nil {
		t.Fatal("missing ordering name accepted")
	}
	out.Reset()
	if err := run(strings.NewReader(input), &out, nil, []string{"BenchmarkX/rows<=BenchmarkRebuild"}); err == nil {
		t.Fatal("ambiguous ordering name accepted")
	}
	out.Reset()
	if err := run(strings.NewReader(input), &out, nil, []string{"BenchmarkIncremental<BenchmarkRebuild"}); err == nil {
		t.Fatal("malformed ordering pair accepted")
	}
}

func TestSplitRequire(t *testing.T) {
	got := splitRequire(" a, ,b,,c ")
	if len(got) != 3 || got[0] != "a" || got[1] != "b" || got[2] != "c" {
		t.Fatalf("splitRequire = %v", got)
	}
	if splitRequire("") != nil {
		t.Fatal("splitRequire(\"\") must be nil")
	}
}
