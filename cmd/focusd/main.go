// Command focusd serves FOCUS deviation monitoring over HTTP: a
// multi-tenant registry of named monitor sessions (lits, dt or cluster
// model classes), each an incremental windowed monitor pinned on reference
// data, fed batches of JSON rows and queried for deviation reports and
// threshold alerts.
//
//	focusd -addr 127.0.0.1:8080
//
// The endpoint table lives on serve.Registry.Handler; the README's
// "Streaming sources & serving" section walks through the API with curl.
// On startup focusd prints one line, "focusd listening on ADDR", so
// scripts (and the smoke test) can bind port 0 and discover the address.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"focus/internal/parallel"
	"focus/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "focusd:", err)
		os.Exit(1)
	}
}

// run executes the server until SIGINT/SIGTERM, writing the listening line
// to stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("focusd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use port 0 for an ephemeral port)")
	par := fs.Int("parallelism", 0, "worker count for scans and bootstrap (0 = GOMAXPROCS, 1 = serial)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	parallel.SetDefault(*par)

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	fmt.Fprintf(stdout, "focusd listening on %s\n", ln.Addr())

	srv := &http.Server{
		Handler:           serve.NewRegistry().Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	return nil
}
