// Command focusd serves FOCUS deviation monitoring over HTTP: a
// multi-tenant registry of named monitor sessions (lits, dt or cluster
// model classes), each an incremental windowed monitor pinned on reference
// data, fed batches of JSON rows and queried for deviation reports and
// threshold alerts.
//
//	focusd -addr 127.0.0.1:8080
//
// With -data DIR sessions are durable: each session writes a snapshot of
// its create-time configuration and logs every fed batch to a per-session
// write-ahead log before ingesting it, compacting the log into a fresh
// snapshot of window state and reports every -compact-every batches. On
// restart focusd restores every session by replaying snapshot-then-WAL,
// reproducing the exact pre-crash state and report stream — deviation
// reports are deterministic in the fed batches, including bootstrap
// qualification, whose RNG stream is seeded per report. Without -data the
// registry is purely in-memory, exactly as before.
//
// The endpoint table lives on serve.Registry.Handler; the README's
// "Streaming sources & serving" section walks through the API with curl.
// On startup focusd prints one line, "focusd listening on ADDR", so
// scripts (and the smoke test) can bind port 0 and discover the address;
// when -data restores sessions, a "focusd restored N sessions" line
// follows it.
//
// On SIGTERM/SIGINT the health endpoint flips to 503 with Retry-After for
// -drain-grace before the listener shuts down, so a fronting focusrouter
// (see cmd/focusrouter) stops routing new work to a member that is about
// to go away.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"focus/internal/parallel"
	"focus/internal/serve"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "focusd:", err)
		os.Exit(1)
	}
}

// run executes the server until SIGINT/SIGTERM, writing the listening line
// to stdout.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("focusd", flag.ContinueOnError)
	addr := fs.String("addr", "127.0.0.1:8080", "listen address (use port 0 for an ephemeral port)")
	par := fs.Int("parallelism", 0, "worker count for scans and bootstrap (0 = GOMAXPROCS, 1 = serial)")
	dataDir := fs.String("data", "", "data directory for durable sessions (empty = in-memory only)")
	compactEvery := fs.Int("compact-every", serve.DefaultCompactEvery,
		"WAL records per session before compacting into a fresh snapshot")
	drainGrace := fs.Duration("drain-grace", 0,
		"on SIGTERM, keep serving this long after /healthz flips to 503 so routers stop sending work")
	if err := fs.Parse(args); err != nil {
		return err
	}
	parallel.SetDefault(*par)

	var reg *serve.Registry
	restored := -1
	if *dataDir != "" {
		var warnings []error
		var err error
		reg, warnings, err = serve.OpenRegistry(*dataDir, *compactEvery)
		if err != nil {
			return fmt.Errorf("opening data directory %s: %w", *dataDir, err)
		}
		for _, w := range warnings {
			fmt.Fprintln(os.Stderr, "focusd: skipping unrestorable", w)
		}
		restored = len(reg.Names())
	} else {
		reg = serve.NewRegistry()
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// The listening line must stay first on stdout: scripts scan for it.
	fmt.Fprintf(stdout, "focusd listening on %s\n", ln.Addr())
	if restored >= 0 {
		fmt.Fprintf(stdout, "focusd restored %d sessions from %s\n", restored, *dataDir)
	}

	srv := &http.Server{
		Handler:           reg.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	// Flip /healthz to 503 + Retry-After first, then keep serving through
	// the grace window: a router health-probing this member sees it drain
	// and stops routing new work before in-flight requests are cut off.
	reg.SetDraining(true)
	if *drainGrace > 0 {
		time.Sleep(*drainGrace)
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		return err
	}
	if err := <-errc; err != nil && !errors.Is(err, http.ErrServerClosed) {
		return err
	}
	// Flush session WALs so a machine crash after a clean shutdown cannot
	// lose acknowledged batches still in the page cache.
	reg.Close()
	return nil
}
