package main

import (
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// recoverySession is a qualified cluster session: qualification consumes a
// per-report RNG stream, so byte-identical reports across the kill prove
// the restored monitor resumes the exact seed sequence, not just the
// window counts.
const recoverySession = `{
	"name": "q",
	"model": "cluster",
	"schema": {"attrs": [{"name": "x", "kind": "numeric", "min": 0, "max": 100}]},
	"grid_attrs": ["x"],
	"grid_bins": 4,
	"min_density": 0.05,
	"window": 2,
	"threshold": 0.5,
	"qualify": true,
	"replicates": 19,
	"seed": 11,
	"reference": [%s]
}`

func recoveryRows(shift int) string {
	var rows []string
	for i := 0; i < 40; i++ {
		rows = append(rows, fmt.Sprintf(`{"x": %d}`, ((i+shift)%4)*25+10))
	}
	return strings.Join(rows, ",")
}

// focusdProc is one running focusd child.
type focusdProc struct {
	cmd  *exec.Cmd
	base string
}

func startFocusd(t *testing.T, bin string, extra ...string) *focusdProc {
	t.Helper()
	args := append([]string{"-addr", "127.0.0.1:0"}, extra...)
	cmd := exec.Command(bin, args...)
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("StdoutPipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting focusd: %v", err)
	}
	t.Cleanup(func() {
		cmd.Process.Kill()
		cmd.Wait()
	})
	buf := make([]byte, 256)
	line := ""
	for !strings.Contains(line, "\n") {
		n, err := stdout.Read(buf)
		if n > 0 {
			line += string(buf[:n])
		}
		if err != nil {
			t.Fatalf("reading startup line: %v (got %q)", err, line)
		}
	}
	line = line[:strings.Index(line, "\n")]
	const prefix = "focusd listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected startup line %q", line)
	}
	go io.Copy(io.Discard, stdout)
	return &focusdProc{cmd: cmd, base: "http://" + strings.TrimPrefix(line, prefix)}
}

func (p *focusdProc) post(t *testing.T, path, body string) {
	t.Helper()
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Post(p.base+path, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", path, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		out, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: status %d: %s", path, resp.StatusCode, out)
	}
}

func (p *focusdProc) get(t *testing.T, path string) string {
	t.Helper()
	client := &http.Client{Timeout: 10 * time.Second}
	resp, err := client.Get(p.base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	defer resp.Body.Close()
	out, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: reading body: %v", path, err)
	}
	if resp.StatusCode >= 300 {
		t.Fatalf("GET %s: status %d: %s", path, resp.StatusCode, out)
	}
	return string(out)
}

// TestFocusdCrashRecovery is the end-to-end durability test: boot focusd
// with -data, create a qualified session, feed part of the batch stream,
// SIGKILL the process (no shutdown hook runs), boot a fresh focusd on the
// same data directory, feed the rest, and require the session list, state
// and report bodies to be byte-identical to an uninterrupted in-memory
// run of the same stream. -compact-every 2 forces WAL compactions both
// before the kill and on the replaying boot.
func TestFocusdCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary recovery test in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "focusd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}

	create := fmt.Sprintf(recoverySession, recoveryRows(0))
	batches := make([]string, 7)
	for i := range batches {
		batches[i] = fmt.Sprintf(`{"rows": [%s]}`, recoveryRows(i))
	}
	const killAfter = 4

	// The uninterrupted control run, entirely in-memory.
	control := startFocusd(t, bin)
	control.post(t, "/v1/sessions", create)
	for _, b := range batches {
		control.post(t, "/v1/sessions/q/batches", b)
	}
	wantState := control.get(t, "/v1/sessions/q")
	wantReports := control.get(t, "/v1/sessions/q/reports")
	wantList := control.get(t, "/v1/sessions")

	// The crashed run.
	dataDir := t.TempDir()
	p1 := startFocusd(t, bin, "-data", dataDir, "-compact-every", "2")
	p1.post(t, "/v1/sessions", create)
	for _, b := range batches[:killAfter] {
		p1.post(t, "/v1/sessions/q/batches", b)
	}
	if err := p1.cmd.Process.Kill(); err != nil { // SIGKILL: nothing flushes
		t.Fatalf("killing focusd: %v", err)
	}
	p1.cmd.Wait()

	p2 := startFocusd(t, bin, "-data", dataDir, "-compact-every", "2")
	for _, b := range batches[killAfter:] {
		p2.post(t, "/v1/sessions/q/batches", b)
	}
	if got := p2.get(t, "/v1/sessions/q"); got != wantState {
		t.Errorf("state diverges after crash recovery\n got: %s\nwant: %s", got, wantState)
	}
	if got := p2.get(t, "/v1/sessions/q/reports"); got != wantReports {
		t.Errorf("reports diverge after crash recovery\n got: %s\nwant: %s", got, wantReports)
	}
	if got := p2.get(t, "/v1/sessions"); got != wantList {
		t.Errorf("session list diverges after crash recovery\n got: %s\nwant: %s", got, wantList)
	}
}
