package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestFocusdSmoke is the end-to-end serving test: build the focusd binary,
// boot it on an ephemeral port, create a session from the checked-in smoke
// fixtures, POST a matching batch then a drifted batch against the pinned
// reference, and assert the threshold alert appears in the report endpoint
// — the same scenario the focusd-smoke CI job replays with curl.
func TestFocusdSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping binary smoke test in -short mode")
	}
	bin := filepath.Join(t.TempDir(), "focusd")
	build := exec.Command("go", "build", "-o", bin, ".")
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		t.Fatalf("go build: %v", err)
	}

	cmd := exec.Command(bin, "-addr", "127.0.0.1:0")
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatalf("StdoutPipe: %v", err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting focusd: %v", err)
	}
	defer func() {
		cmd.Process.Kill()
		cmd.Wait()
	}()

	// focusd announces its ephemeral address on stdout.
	sc := bufio.NewScanner(stdout)
	if !sc.Scan() {
		t.Fatalf("focusd printed no listening line: %v", sc.Err())
	}
	line := sc.Text()
	const prefix = "focusd listening on "
	if !strings.HasPrefix(line, prefix) {
		t.Fatalf("unexpected startup line %q", line)
	}
	base := "http://" + strings.TrimPrefix(line, prefix)

	client := &http.Client{Timeout: 10 * time.Second}
	post := func(path, fixture string) map[string]any {
		t.Helper()
		body, err := os.ReadFile(filepath.Join("testdata", "smoke", fixture))
		if err != nil {
			t.Fatalf("reading fixture: %v", err)
		}
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		defer resp.Body.Close()
		var out map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			t.Fatalf("POST %s: decoding: %v", path, err)
		}
		if resp.StatusCode >= 300 {
			t.Fatalf("POST %s: status %d: %v", path, resp.StatusCode, out)
		}
		return out
	}

	if resp, err := client.Get(base + "/healthz"); err != nil || resp.StatusCode != 200 {
		t.Fatalf("healthz: %v %v", resp, err)
	} else {
		resp.Body.Close()
	}

	post("/v1/sessions", "create.json")
	if rep := post("/v1/sessions/smoke/batches", "batch-base.json")["report"].(map[string]any); rep["alert"].(bool) {
		t.Fatalf("baseline batch alerted: %v", rep)
	}
	if rep := post("/v1/sessions/smoke/batches", "batch-drift.json")["report"].(map[string]any); !rep["alert"].(bool) {
		t.Fatalf("drifted batch did not alert: %v", rep)
	}

	resp, err := client.Get(base + "/v1/sessions/smoke/reports")
	if err != nil {
		t.Fatalf("reports: %v", err)
	}
	defer resp.Body.Close()
	var reports struct {
		Reports []map[string]any `json:"reports"`
		Alerts  int              `json:"alerts"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&reports); err != nil {
		t.Fatalf("decoding reports: %v", err)
	}
	if reports.Alerts != 1 || len(reports.Reports) != 2 {
		t.Fatalf("reports endpoint: %+v", reports)
	}
	if !reports.Reports[1]["alert"].(bool) {
		t.Fatalf("alert not in report endpoint: %+v", reports)
	}

	// Graceful shutdown on SIGTERM.
	if err := cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatalf("signalling focusd: %v", err)
	}
	done := make(chan error, 1)
	go func() { done <- cmd.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("focusd exited with: %v", err)
		}
	case <-time.After(15 * time.Second):
		t.Fatal("focusd did not shut down after SIGINT")
	}
}
