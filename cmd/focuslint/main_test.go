package main

import (
	"io"
	"os"
	"strings"
	"testing"

	"focus/internal/lint"
)

// TestRepoIsClean is the tier-1 gate: the full analyzer suite must report
// zero diagnostics over the whole repository. Deliberately introducing any
// of the four checked bug classes fails this test (and make lint).
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping whole-repo analysis in -short mode")
	}
	pkgs, err := lint.Load("../..", "./...")
	if err != nil {
		t.Fatalf("loading repository: %v", err)
	}
	diags, err := lint.RunAnalyzers(pkgs, lint.All())
	if err != nil {
		t.Fatalf("running analyzers: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
}

func TestRunList(t *testing.T) {
	out := captureStdout(t, func() {
		if code := run([]string{"-list"}); code != 0 {
			t.Errorf("run(-list) = %d, want 0", code)
		}
	})
	for _, name := range []string{"lockguard", "determinism", "sharedcapture", "walorder"} {
		if !strings.Contains(out, name) {
			t.Errorf("-list output missing analyzer %q:\n%s", name, out)
		}
	}
}

func TestRunBadFlag(t *testing.T) {
	if code := run([]string{"-no-such-flag"}); code != 2 {
		t.Errorf("run(-no-such-flag) = %d, want 2", code)
	}
}

func TestRunBadPattern(t *testing.T) {
	if code := run([]string{"./no/such/package"}); code != 2 {
		t.Errorf("run(./no/such/package) = %d, want 2", code)
	}
}

// captureStdout runs f with os.Stdout redirected to a pipe and returns what
// it wrote.
func captureStdout(t *testing.T, f func()) string {
	t.Helper()
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatalf("pipe: %v", err)
	}
	os.Stdout = w
	defer func() { os.Stdout = old }()
	f()
	w.Close()
	b, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("reading captured stdout: %v", err)
	}
	return string(b)
}
