// Command focuslint is the multichecker for the project's custom static
// analyzers (internal/lint): it mechanically enforces the determinism,
// locking and replay invariants that generic linters cannot know about.
//
// Usage:
//
//	focuslint [-list] [packages]
//
// With no package patterns it analyzes ./... from the current directory.
// Diagnostics print one per line in the canonical file:line:col form; the
// exit status is 0 when the tree is clean, 1 when any diagnostic was
// reported, and 2 on a usage or load failure. `make lint` runs it over the
// whole repository, and the ci target (plus the focuslint CI job) fails on
// any finding; see the package documentation of internal/lint for the
// analyzer list and the annotation grammar.
package main

import (
	"flag"
	"fmt"
	"os"

	"focus/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	fs := flag.NewFlagSet("focuslint", flag.ContinueOnError)
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: focuslint [-list] [packages]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := lint.Load(".", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "focuslint:", err)
		return 2
	}
	diags, err := lint.RunAnalyzers(pkgs, analyzers)
	if err != nil {
		fmt.Fprintln(os.Stderr, "focuslint:", err)
		return 2
	}
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		return 1
	}
	return 0
}
