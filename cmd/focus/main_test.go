package main

// Golden-file tests: every CLI mode runs on deterministic generated inputs
// with -parallelism 1 and fixed seeds, and its stdout must match the
// checked-in files under testdata/golden. Regenerate after an intentional
// output change with:
//
//	go test ./cmd/focus -run TestGolden -update

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"focus/internal/classgen"
	"focus/internal/dataset"
	"focus/internal/quest"
	"focus/internal/txn"
)

var update = flag.Bool("update", false, "rewrite the golden files")

// inputs generates the deterministic datasets the golden runs read,
// returning the four file paths (txn reference/stream, CSV
// reference/stream). The streams carry a drift tail so follow-mode goldens
// exercise ALERT reporting.
func inputs(t *testing.T) (refTxns, streamTxns, refCSV, streamCSV string) {
	t.Helper()
	dir := t.TempDir()

	qcfg := quest.DefaultConfig(600)
	qcfg.NumItems = 120
	qcfg.NumPatterns = 80
	qcfg.AvgTxnLen = 8
	qcfg.Seed = 1
	ref, err := quest.Generate(qcfg)
	if err != nil {
		t.Fatal(err)
	}
	same := qcfg
	same.Seed = 2
	sameD, err := quest.Generate(same)
	if err != nil {
		t.Fatal(err)
	}
	changed := qcfg
	changed.NumTxns = 400
	changed.AvgPatternLen = 8
	changed.Seed = 3
	changedD, err := quest.Generate(changed)
	if err != nil {
		t.Fatal(err)
	}
	streamD, err := sameD.Concat(changedD)
	if err != nil {
		t.Fatal(err)
	}
	refTxns = writeTxns(t, dir, "ref.txns", ref)
	streamTxns = writeTxns(t, dir, "stream.txns", streamD)

	refD, err := classgen.Generate(classgen.Config{NumTuples: 1200, Function: classgen.F1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	sameC, err := classgen.Generate(classgen.Config{NumTuples: 900, Function: classgen.F1, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	driftC, err := classgen.Generate(classgen.Config{NumTuples: 600, Function: classgen.F3, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	streamC, err := sameC.Concat(driftC)
	if err != nil {
		t.Fatal(err)
	}
	refCSV = writeCSV(t, dir, "ref.csv", refD)
	streamCSV = writeCSV(t, dir, "stream.csv", streamC)
	return refTxns, streamTxns, refCSV, streamCSV
}

func writeTxns(t *testing.T, dir, name string, d *txn.Dataset) string {
	t.Helper()
	path := filepath.Join(dir, name)
	fh, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	if err := d.Write(fh); err != nil {
		t.Fatal(err)
	}
	return path
}

func writeCSV(t *testing.T, dir, name string, d *dataset.Dataset) string {
	t.Helper()
	path := filepath.Join(dir, name)
	fh, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer fh.Close()
	if err := d.WriteCSV(fh); err != nil {
		t.Fatal(err)
	}
	return path
}

func checkGolden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", "golden", name+".golden")
	if *update {
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file %s (regenerate with -update): %v", path, err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("output drifted from %s\n--- got ---\n%s--- want ---\n%s", path, got, want)
	}
}

func TestGolden(t *testing.T) {
	refTxns, streamTxns, refCSV, streamCSV := inputs(t)
	cases := []struct {
		name string
		args []string
	}{
		{"lits", []string{
			"-model", "lits", "-minsup", "0.02", "-bound",
			"-qualify", "-replicates", "19", "-seed", "1", "-parallelism", "1",
			refTxns, streamTxns}},
		{"lits-max", []string{
			"-model", "lits", "-minsup", "0.02", "-f", "fs", "-g", "max", "-parallelism", "1",
			refTxns, streamTxns}},
		{"dt", []string{
			"-model", "dt", "-maxdepth", "5", "-minleaf", "40",
			"-qualify", "-replicates", "19", "-seed", "2", "-parallelism", "1",
			refCSV, streamCSV}},
		{"cluster", []string{
			"-model", "cluster", "-attrs", "salary,age", "-bins", "6", "-mindensity", "0.02", "-parallelism", "1",
			refCSV, streamCSV}},
		{"cluster-qualify", []string{
			"-model", "cluster", "-attrs", "salary,age", "-bins", "6", "-mindensity", "0.02",
			"-qualify", "-replicates", "19", "-seed", "7", "-parallelism", "1",
			refCSV, streamCSV}},
		{"lits-follow", []string{
			"-model", "lits", "-follow", "-minsup", "0.02", "-batch", "200", "-window", "2", "-parallelism", "1",
			refTxns, streamTxns}},
		{"dt-follow-alert", []string{
			"-model", "dt", "-follow", "-batch", "300", "-window", "2", "-threshold", "0.15",
			"-maxdepth", "5", "-minleaf", "40", "-parallelism", "1",
			refCSV, streamCSV}},
		{"dt-follow-qualify", []string{
			"-model", "dt", "-follow", "-batch", "500", "-window", "1",
			"-qualify", "-replicates", "19", "-seed", "3",
			"-maxdepth", "5", "-minleaf", "40", "-parallelism", "1",
			refCSV, streamCSV}},
		{"cluster-follow-tumbling", []string{
			"-model", "cluster", "-follow", "-tumbling", "-batch", "300", "-window", "2",
			"-attrs", "salary,age", "-bins", "6", "-mindensity", "0.02", "-parallelism", "1",
			refCSV, streamCSV}},
		{"lits-follow-prev", []string{
			"-model", "lits", "-follow", "-prev", "-minsup", "0.02", "-batch", "250", "-window", "1", "-parallelism", "1",
			refTxns, streamTxns}},
		// The dt golden args on the histogram split search: a binned tree is
		// a different (coarser-cut) tree, so it earns its own golden.
		{"dt-hist", []string{
			"-model", "dt", "-split-search", "hist", "-histbins", "32",
			"-maxdepth", "5", "-minleaf", "40", "-parallelism", "1",
			refCSV, streamCSV}},
		// The lits golden args forced onto the bitmap backend: the counting
		// backend must never change a byte of output (see
		// TestCounterGoldenIdentical, which pins this golden to lits.golden).
		{"counter-bitmap", []string{
			"-model", "lits", "-minsup", "0.02", "-bound", "-counter", "bitmap",
			"-qualify", "-replicates", "19", "-seed", "1", "-parallelism", "1",
			refTxns, streamTxns}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tc.args, &buf); err != nil {
				t.Fatalf("run(%v): %v", tc.args, err)
			}
			checkGolden(t, tc.name, buf.Bytes())
		})
	}
}

// Parallelism must not change any output: every golden must reproduce
// bit-identically at -parallelism 4.
func TestGoldenParallelismInvariant(t *testing.T) {
	refTxns, streamTxns, refCSV, streamCSV := inputs(t)
	cases := []struct {
		name string
		args []string
	}{
		{"lits-follow", []string{
			"-model", "lits", "-follow", "-minsup", "0.02", "-batch", "200", "-window", "2", "-parallelism", "4",
			refTxns, streamTxns}},
		{"dt-follow-alert", []string{
			"-model", "dt", "-follow", "-batch", "300", "-window", "2", "-threshold", "0.15",
			"-maxdepth", "5", "-minleaf", "40", "-parallelism", "4",
			refCSV, streamCSV}},
		{"cluster-follow-tumbling", []string{
			"-model", "cluster", "-follow", "-tumbling", "-batch", "300", "-window", "2",
			"-attrs", "salary,age", "-bins", "6", "-mindensity", "0.02", "-parallelism", "4",
			refCSV, streamCSV}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			if err := run(tc.args, &buf); err != nil {
				t.Fatal(err)
			}
			checkGolden(t, tc.name, buf.Bytes())
		})
	}
}

// TestCounterGoldenIdentical proves the counting-backend equivalence at
// the CLI level: the counter-bitmap golden must be byte-identical to the
// lits golden (same args, different backend), and every -counter value must
// reproduce it — in batch and follow mode.
func TestCounterGoldenIdentical(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "golden", "lits.golden"))
	if err != nil {
		t.Fatal(err)
	}
	bitmap, err := os.ReadFile(filepath.Join("testdata", "golden", "counter-bitmap.golden"))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(want, bitmap) {
		t.Errorf("counter-bitmap.golden differs from lits.golden:\n--- bitmap ---\n%s--- lits ---\n%s", bitmap, want)
	}
	refTxns, streamTxns, _, _ := inputs(t)
	for _, counter := range []string{"auto", "trie", "bitmap"} {
		var buf bytes.Buffer
		args := []string{
			"-model", "lits", "-minsup", "0.02", "-bound", "-counter", counter,
			"-qualify", "-replicates", "19", "-seed", "1", "-parallelism", "1",
			refTxns, streamTxns}
		if err := run(args, &buf); err != nil {
			t.Fatalf("-counter %s: %v", counter, err)
		}
		if !bytes.Equal(buf.Bytes(), want) {
			t.Errorf("-counter %s output differs from lits.golden", counter)
		}
		buf.Reset()
		follow := []string{
			"-model", "lits", "-follow", "-minsup", "0.02", "-counter", counter,
			"-batch", "200", "-window", "2", "-parallelism", "1",
			refTxns, streamTxns}
		if err := run(follow, &buf); err != nil {
			t.Fatalf("-counter %s follow: %v", counter, err)
		}
		checkGolden(t, "lits-follow", buf.Bytes())
	}
}

// TestSplitSearchGoldenIdentical proves the exact-engine equivalence at the
// CLI level: -split-search exact is the default engine, and auto resolves
// to exact below the size cutoff, so both must reproduce dt.golden
// byte-for-byte — at any parallelism.
func TestSplitSearchGoldenIdentical(t *testing.T) {
	_, _, refCSV, streamCSV := inputs(t)
	for _, search := range []string{"exact", "auto"} {
		for _, par := range []string{"1", "4"} {
			var buf bytes.Buffer
			args := []string{
				"-model", "dt", "-split-search", search, "-maxdepth", "5", "-minleaf", "40",
				"-qualify", "-replicates", "19", "-seed", "2", "-parallelism", par,
				refCSV, streamCSV}
			if err := run(args, &buf); err != nil {
				t.Fatalf("-split-search %s -parallelism %s: %v", search, par, err)
			}
			checkGolden(t, "dt", buf.Bytes())
		}
	}
}

// TestCounterFlagErrors pins the usage error for invalid -counter values.
func TestCounterFlagErrors(t *testing.T) {
	refTxns, _, _, _ := inputs(t)
	for _, bad := range []string{"zz", "btree", "Bitmap", "vertical", "0"} {
		t.Run(bad, func(t *testing.T) {
			var buf bytes.Buffer
			err := run([]string{"-model", "lits", "-counter", bad, refTxns, refTxns}, &buf)
			if err == nil {
				t.Fatalf("-counter %q did not error", bad)
			}
			if !strings.Contains(err.Error(), "unknown counter") {
				t.Errorf("error %q does not mention the unknown counter", err)
			}
		})
	}
}

func TestRunErrors(t *testing.T) {
	refTxns, _, refCSV, streamCSV := inputs(t)
	cases := []struct {
		name string
		args []string
		want string
	}{
		{"unknown-model", []string{"-model", "nope", refTxns, refTxns}, "unknown model class"},
		{"one-arg", []string{refTxns}, "exactly two"},
		{"bad-f", []string{"-f", "zz", refTxns, refTxns}, "unknown difference function"},
		{"bad-g", []string{"-g", "zz", refTxns, refTxns}, "unknown aggregate function"},
		{"bad-attr", []string{"-model", "cluster", "-attrs", "nope", refCSV, streamCSV}, "unknown attribute"},
		{"missing-file", []string{"-model", "lits", refTxns, filepath.Join(t.TempDir(), "absent.txns")}, "absent"},
		{"bad-batch", []string{"-model", "lits", "-follow", "-batch", "0", refTxns, refTxns}, "batch size"},
		{"bad-counter", []string{"-model", "lits", "-counter", "zz", refTxns, refTxns}, "unknown counter"},
		{"bad-split-search", []string{"-model", "dt", "-split-search", "btree", refCSV, streamCSV}, "unknown split search"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var buf bytes.Buffer
			err := run(tc.args, &buf)
			if err == nil {
				t.Fatalf("run(%v) did not error", tc.args)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Errorf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// Cluster qualification — impossible before the unified pipeline — must be
// deterministic and parallelism-invariant like every other mode.
func TestClusterQualifyParallelismInvariant(t *testing.T) {
	_, _, refCSV, streamCSV := inputs(t)
	var buf bytes.Buffer
	args := []string{
		"-model", "cluster", "-attrs", "salary,age", "-bins", "6", "-mindensity", "0.02",
		"-qualify", "-replicates", "19", "-seed", "7", "-parallelism", "4",
		refCSV, streamCSV}
	if err := run(args, &buf); err != nil {
		t.Fatal(err)
	}
	checkGolden(t, "cluster-qualify", buf.Bytes())
}
