// Command focus computes the FOCUS deviation between two datasets and,
// optionally, its bootstrap significance.
//
// Market-basket mode (lits-models):
//
//	focus -model lits -minsup 0.01 -f fa -g sum store1.txns store2.txns
//
// Classification mode (dt-models), over CSV files produced by genclass:
//
//	focus -model dt -f fa -g sum -qualify people1.csv people2.csv
//
// Cluster mode (grid-based cluster-models), over the same CSV files:
//
//	focus -model cluster -attrs salary,age -bins 8 -mindensity 0.02 people1.csv people2.csv
//
// Follow mode replays the second file as a stream of batches through an
// incremental windowed monitor pinned on the first file, printing one
// deviation report per batch (and ALERT markers past -threshold):
//
//	focus -model dt -follow -batch 500 -window 4 -threshold 0.2 train.csv stream.csv
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"focus/internal/apriori"
	"focus/internal/classgen"
	"focus/internal/cluster"
	"focus/internal/core"
	"focus/internal/dataset"
	"focus/internal/dtree"
	"focus/internal/parallel"
	"focus/internal/stats"
	"focus/internal/stream"
	"focus/internal/txn"
)

func main() {
	err := run(os.Args[1:], os.Stdout)
	switch {
	case err == nil:
	case errors.Is(err, flag.ErrHelp):
		os.Exit(2)
	default:
		fmt.Fprintln(os.Stderr, "focus:", err)
		os.Exit(1)
	}
}

// config holds the parsed flags of one invocation.
type config struct {
	model       string
	minsup      float64
	fName       string
	gName       string
	qualify     bool
	replicates  int
	seed        int64
	maxDepth    int
	minLeaf     int
	showBound   bool
	par         int
	counterName string
	counter     apriori.Counter
	searchName  string
	splitSearch dtree.SplitSearch
	histBins    int

	attrs      string
	bins       int
	minDensity float64

	follow    bool
	batch     int
	window    int
	tumbling  bool
	prev      bool
	threshold float64

	f core.DiffFunc
	g core.AggFunc
}

// run executes one focus invocation, writing its report to stdout. It is
// the testable core of main: the golden-file tests drive it directly.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("focus", flag.ContinueOnError)
	var cfg config
	fs.StringVar(&cfg.model, "model", "lits", "model class: lits, dt or cluster")
	fs.Float64Var(&cfg.minsup, "minsup", 0.01, "minimum support for lits-models")
	fs.StringVar(&cfg.fName, "f", "fa", "difference function: fa (absolute) or fs (scaled)")
	fs.StringVar(&cfg.gName, "g", "sum", "aggregate function: sum or max")
	fs.BoolVar(&cfg.qualify, "qualify", false, "bootstrap the significance of the deviation")
	fs.IntVar(&cfg.replicates, "replicates", stats.DefaultBootstrapReplicates, "bootstrap replicates")
	fs.Int64Var(&cfg.seed, "seed", 1, "bootstrap seed")
	fs.IntVar(&cfg.maxDepth, "maxdepth", 10, "decision tree depth limit")
	fs.IntVar(&cfg.minLeaf, "minleaf", 25, "decision tree minimum leaf size")
	fs.BoolVar(&cfg.showBound, "bound", false, "also print the delta* upper bound (lits only)")
	fs.IntVar(&cfg.par, "parallelism", 0, "worker count for scans and bootstrap (0 = GOMAXPROCS, 1 = serial)")
	fs.StringVar(&cfg.counterName, "counter", "auto", "lits counting backend: auto, trie or bitmap (bit-identical output)")
	fs.StringVar(&cfg.searchName, "split-search", "exact", "dt numeric split search: exact, hist or auto")
	fs.IntVar(&cfg.histBins, "histbins", 0, "dt hist-mode quantile bins per attribute (0 = default)")
	fs.StringVar(&cfg.attrs, "attrs", "salary,age", "cluster grid attributes (comma-separated numeric attribute names)")
	fs.IntVar(&cfg.bins, "bins", 8, "cluster grid bins per attribute")
	fs.Float64Var(&cfg.minDensity, "mindensity", 0.02, "cluster minimum cell density")
	fs.BoolVar(&cfg.follow, "follow", false, "replay DATASET2 as a stream of batches monitored against DATASET1")
	fs.IntVar(&cfg.batch, "batch", 1000, "records per batch in follow mode")
	fs.IntVar(&cfg.window, "window", 4, "batches per window in follow mode")
	fs.BoolVar(&cfg.tumbling, "tumbling", false, "tumble the follow-mode window instead of sliding it")
	fs.BoolVar(&cfg.prev, "prev", false, "compare follow-mode windows against the previous window instead of DATASET1")
	fs.Float64Var(&cfg.threshold, "threshold", 0, "mark follow-mode reports at or above this deviation as ALERT")
	if err := fs.Parse(args); err != nil {
		return err
	}
	parallel.SetDefault(cfg.par)
	if fs.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: focus [flags] DATASET1 DATASET2")
		fs.PrintDefaults()
		return errors.New("expected exactly two dataset arguments")
	}
	var err error
	cfg.f, err = core.DiffByName(cfg.fName)
	if err != nil {
		return err
	}
	cfg.g, err = core.AggByName(cfg.gName)
	if err != nil {
		return err
	}
	cfg.counter, err = apriori.ParseCounter(cfg.counterName)
	if err != nil {
		return err
	}
	cfg.splitSearch, err = dtree.ParseSplitSearch(cfg.searchName)
	if err != nil {
		return err
	}

	switch cfg.model {
	case "lits":
		if cfg.follow {
			return runLitsFollow(&cfg, fs.Arg(0), fs.Arg(1), stdout)
		}
		return runLits(&cfg, fs.Arg(0), fs.Arg(1), stdout)
	case "dt":
		if cfg.follow {
			return runDTFollow(&cfg, fs.Arg(0), fs.Arg(1), stdout)
		}
		return runDT(&cfg, fs.Arg(0), fs.Arg(1), stdout)
	case "cluster":
		if cfg.follow {
			return runClusterFollow(&cfg, fs.Arg(0), fs.Arg(1), stdout)
		}
		return runCluster(&cfg, fs.Arg(0), fs.Arg(1), stdout)
	default:
		return fmt.Errorf("unknown model class %q (want lits, dt or cluster)", cfg.model)
	}
}

// qualifyOptions assembles the unified bootstrap options shared by every
// batch mode.
func qualifyOptions(cfg *config) []core.Option {
	return []core.Option{core.WithReplicates(cfg.replicates), core.WithSeed(cfg.seed)}
}

// dtConfig assembles the tree-growth configuration shared by the dt batch
// and follow modes.
func dtConfig(cfg *config) dtree.Config {
	return dtree.Config{
		MaxDepth:    cfg.maxDepth,
		MinLeaf:     cfg.minLeaf,
		SplitSearch: cfg.splitSearch,
		HistBins:    cfg.histBins,
	}
}

func runLits(cfg *config, path1, path2 string, w io.Writer) error {
	d1, err := readTxns(path1)
	if err != nil {
		return err
	}
	d2, err := readTxns(path2)
	if err != nil {
		return err
	}
	mc := core.LitsWithCounter(cfg.minsup, cfg.counter)
	m1, err := mc.Induce(d1, 0)
	if err != nil {
		return err
	}
	m2, err := mc.Induce(d2, 0)
	if err != nil {
		return err
	}
	dev, err := core.Deviation(mc, m1, m2, d1, d2, cfg.f, cfg.g, core.WithCounter(cfg.counter))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "lits-models: |L1|=%d |L2|=%d minsup=%g\n", m1.Len(), m2.Len(), cfg.minsup)
	fmt.Fprintf(w, "deviation delta(%s,%s) = %.6f\n", cfg.fName, cfg.gName, dev)
	if cfg.showBound {
		fmt.Fprintf(w, "upper bound delta*(%s) = %.6f (no dataset scan)\n", cfg.gName, core.LitsUpperBound(m1, m2, cfg.g))
	}
	if cfg.qualify {
		q, err := core.Qualify(mc, d1, d2, cfg.f, cfg.g,
			append(qualifyOptions(cfg), core.WithCounter(cfg.counter))...)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "significance sig(delta) = %.1f%% (bootstrap, %d replicates)\n", q.Significance, len(q.Null))
	}
	return nil
}

func runDT(cfg *config, path1, path2 string, w io.Writer) error {
	schema := classgen.Schema()
	d1, err := readCSV(path1, schema)
	if err != nil {
		return err
	}
	d2, err := readCSV(path2, schema)
	if err != nil {
		return err
	}
	mc := core.DT(dtConfig(cfg))
	m1, err := mc.Induce(d1, 0)
	if err != nil {
		return err
	}
	m2, err := mc.Induce(d2, 0)
	if err != nil {
		return err
	}
	dev, err := core.Deviation(mc, m1, m2, d1, d2, cfg.f, cfg.g)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "dt-models: %d and %d leaves\n", m1.Tree.NumLeaves(), m2.Tree.NumLeaves())
	fmt.Fprintf(w, "deviation delta(%s,%s) = %.6f\n", cfg.fName, cfg.gName, dev)
	if cfg.qualify {
		q, err := core.Qualify(mc, d1, d2, cfg.f, cfg.g, qualifyOptions(cfg)...)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "significance sig(delta) = %.1f%% (bootstrap, %d replicates)\n", q.Significance, len(q.Null))
	}
	return nil
}

func runCluster(cfg *config, path1, path2 string, w io.Writer) error {
	schema := classgen.Schema()
	grid, err := gridFromFlags(cfg, schema)
	if err != nil {
		return err
	}
	d1, err := readCSV(path1, schema)
	if err != nil {
		return err
	}
	d2, err := readCSV(path2, schema)
	if err != nil {
		return err
	}
	mc := core.Cluster(grid, cfg.minDensity)
	m1, err := mc.Induce(d1, 0)
	if err != nil {
		return err
	}
	m2, err := mc.Induce(d2, 0)
	if err != nil {
		return err
	}
	dev, err := core.Deviation(mc, m1, m2, d1, d2, cfg.f, cfg.g)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "cluster-models: %d and %d clusters over %s (%d bins, mindensity %g)\n",
		m1.NumClusters(), m2.NumClusters(), cfg.attrs, cfg.bins, cfg.minDensity)
	fmt.Fprintf(w, "deviation delta(%s,%s) = %.6f\n", cfg.fName, cfg.gName, dev)
	if cfg.qualify {
		// Cluster-model qualification exists only through the unified
		// pipeline: the per-class API never had it.
		q, err := core.Qualify(mc, d1, d2, cfg.f, cfg.g, qualifyOptions(cfg)...)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "significance sig(delta) = %.1f%% (bootstrap, %d replicates)\n", q.Significance, len(q.Null))
	}
	return nil
}

func gridFromFlags(cfg *config, schema *dataset.Schema) (*cluster.Grid, error) {
	var attrs []int
	for _, name := range strings.Split(cfg.attrs, ",") {
		name = strings.TrimSpace(name)
		i := schema.AttrIndex(name)
		if i < 0 {
			return nil, fmt.Errorf("unknown attribute %q in -attrs", name)
		}
		attrs = append(attrs, i)
	}
	return cluster.NewGrid(schema, attrs, cfg.bins)
}

// monitorOptions assembles the stream options shared by the follow modes.
func monitorOptions(cfg *config) stream.Options {
	return stream.Options{
		WindowBatches:  cfg.window,
		Tumbling:       cfg.tumbling,
		PreviousWindow: cfg.prev,
		F:              cfg.f,
		G:              cfg.g,
		Threshold:      cfg.threshold,
		Qualify:        cfg.qualify,
		Replicates:     cfg.replicates,
		Seed:           cfg.seed,
		Parallelism:    cfg.par,
	}
}

// printReport renders one monitor report as a stable single line.
func printReport(w io.Writer, cfg *config, batchNo int, rep *stream.Report) {
	if rep == nil {
		fmt.Fprintf(w, "batch %d: window filling\n", batchNo)
		return
	}
	fmt.Fprintf(w, "batch %d: window[batches=%d n=%d] ref[n=%d] regions=%d delta(%s,%s) = %.6f",
		batchNo, rep.Batches, rep.N, rep.RefN, rep.Regions, cfg.fName, cfg.gName, rep.Deviation)
	if rep.Qual != nil {
		fmt.Fprintf(w, " sig=%.1f%%", rep.Qual.Significance)
	}
	if rep.Alert {
		fmt.Fprint(w, " ALERT")
	}
	fmt.Fprintln(w)
}

func runLitsFollow(cfg *config, refPath, streamPath string, w io.Writer) error {
	ref, err := readTxns(refPath)
	if err != nil {
		return err
	}
	sd, err := readTxns(streamPath)
	if err != nil {
		return err
	}
	if sd.NumItems != ref.NumItems {
		return fmt.Errorf("stream universe %d != reference universe %d", sd.NumItems, ref.NumItems)
	}
	mon, err := stream.New(core.LitsWithCounter(cfg.minsup, cfg.counter), ref, monitorOptions(cfg))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "following %d transactions in batches of %d (lits, window %d%s)\n",
		sd.Len(), cfg.batch, cfg.window, followModeSuffix(cfg))
	return replay(cfg, len(sd.Txns), w, func(lo, hi int) (*stream.Report, error) {
		return mon.Ingest(&txn.Dataset{NumItems: ref.NumItems, Txns: sd.Txns[lo:hi]})
	})
}

func runDTFollow(cfg *config, refPath, streamPath string, w io.Writer) error {
	schema := classgen.Schema()
	ref, err := readCSV(refPath, schema)
	if err != nil {
		return err
	}
	sd, err := readCSV(streamPath, schema)
	if err != nil {
		return err
	}
	tree, err := dtree.BuildP(ref, dtConfig(cfg), 0)
	if err != nil {
		return err
	}
	mon, err := stream.New(core.PinnedDT(tree), ref, monitorOptions(cfg))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "following %d tuples in batches of %d (dt over %d leaves, window %d%s)\n",
		sd.Len(), cfg.batch, tree.NumLeaves(), cfg.window, followModeSuffix(cfg))
	return replay(cfg, len(sd.Tuples), w, func(lo, hi int) (*stream.Report, error) {
		return mon.Ingest(dataset.FromTuples(schema, sd.Tuples[lo:hi]))
	})
}

func runClusterFollow(cfg *config, refPath, streamPath string, w io.Writer) error {
	schema := classgen.Schema()
	grid, err := gridFromFlags(cfg, schema)
	if err != nil {
		return err
	}
	ref, err := readCSV(refPath, schema)
	if err != nil {
		return err
	}
	sd, err := readCSV(streamPath, schema)
	if err != nil {
		return err
	}
	mon, err := stream.New(core.Cluster(grid, cfg.minDensity), ref, monitorOptions(cfg))
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "following %d tuples in batches of %d (cluster over %s, window %d%s)\n",
		sd.Len(), cfg.batch, cfg.attrs, cfg.window, followModeSuffix(cfg))
	return replay(cfg, len(sd.Tuples), w, func(lo, hi int) (*stream.Report, error) {
		return mon.Ingest(dataset.FromTuples(schema, sd.Tuples[lo:hi]))
	})
}

func followModeSuffix(cfg *config) string {
	out := ""
	if cfg.tumbling {
		out += ", tumbling"
	}
	if cfg.prev {
		out += ", vs previous window"
	}
	return out
}

// replay feeds [0, n) to ingest in batches of cfg.batch, printing one line
// per batch and a trailing alert summary.
func replay(cfg *config, n int, w io.Writer, ingest func(lo, hi int) (*stream.Report, error)) error {
	if cfg.batch < 1 {
		return fmt.Errorf("batch size %d < 1", cfg.batch)
	}
	alerts := 0
	batchNo := 0
	for lo := 0; lo < n; lo += cfg.batch {
		hi := lo + cfg.batch
		if hi > n {
			hi = n
		}
		rep, err := ingest(lo, hi)
		if err != nil {
			return err
		}
		printReport(w, cfg, batchNo, rep)
		if rep != nil && rep.Alert {
			alerts++
		}
		batchNo++
	}
	fmt.Fprintf(w, "replayed %d batches, %d alerts\n", batchNo, alerts)
	return nil
}

func readTxns(path string) (*txn.Dataset, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	d, err := txn.Read(fh)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}

func readCSV(path string, schema *dataset.Schema) (*dataset.Dataset, error) {
	fh, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer fh.Close()
	d, err := dataset.ReadCSV(fh, schema)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return d, nil
}
