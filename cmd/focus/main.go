// Command focus computes the FOCUS deviation between two datasets and,
// optionally, its bootstrap significance.
//
// Market-basket mode (lits-models):
//
//	focus -model lits -minsup 0.01 -f fa -g sum store1.txns store2.txns
//
// Classification mode (dt-models), over CSV files produced by genclass:
//
//	focus -model dt -f fa -g sum -qualify people1.csv people2.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"focus/internal/classgen"
	"focus/internal/core"
	"focus/internal/dataset"
	"focus/internal/dtree"
	"focus/internal/parallel"
	"focus/internal/stats"
	"focus/internal/txn"
)

func main() {
	var (
		model      = flag.String("model", "lits", "model class: lits or dt")
		minsup     = flag.Float64("minsup", 0.01, "minimum support for lits-models")
		fName      = flag.String("f", "fa", "difference function: fa (absolute) or fs (scaled)")
		gName      = flag.String("g", "sum", "aggregate function: sum or max")
		qualify    = flag.Bool("qualify", false, "bootstrap the significance of the deviation")
		replicates = flag.Int("replicates", stats.DefaultBootstrapReplicates, "bootstrap replicates")
		seed       = flag.Int64("seed", 1, "bootstrap seed")
		maxDepth   = flag.Int("maxdepth", 10, "decision tree depth limit")
		minLeaf    = flag.Int("minleaf", 25, "decision tree minimum leaf size")
		showBound  = flag.Bool("bound", false, "also print the delta* upper bound (lits only)")
		par        = flag.Int("parallelism", 0, "worker count for scans and bootstrap (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()
	parallel.SetDefault(*par)
	if flag.NArg() != 2 {
		fmt.Fprintln(os.Stderr, "usage: focus [flags] DATASET1 DATASET2")
		flag.PrintDefaults()
		os.Exit(2)
	}
	f, err := core.DiffByName(*fName)
	if err != nil {
		fatal(err)
	}
	g, err := core.AggByName(*gName)
	if err != nil {
		fatal(err)
	}

	switch *model {
	case "lits":
		d1 := readTxns(flag.Arg(0))
		d2 := readTxns(flag.Arg(1))
		m1, err := core.MineLitsP(d1, *minsup, 0)
		if err != nil {
			fatal(err)
		}
		m2, err := core.MineLitsP(d2, *minsup, 0)
		if err != nil {
			fatal(err)
		}
		dev, err := core.LitsDeviation(m1, m2, d1, d2, f, g, core.LitsOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("lits-models: |L1|=%d |L2|=%d minsup=%g\n", m1.Len(), m2.Len(), *minsup)
		fmt.Printf("deviation delta(%s,%s) = %.6f\n", *fName, *gName, dev)
		if *showBound {
			fmt.Printf("upper bound delta*(%s) = %.6f (no dataset scan)\n", *gName, core.LitsUpperBound(m1, m2, g))
		}
		if *qualify {
			q, err := core.QualifyLits(d1, d2, *minsup, f, g, core.QualifyOptions{Replicates: *replicates, Seed: *seed})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("significance sig(delta) = %.1f%% (bootstrap, %d replicates)\n", q.Significance, len(q.Null))
		}
	case "dt":
		schema := classgen.Schema()
		d1 := readCSV(flag.Arg(0), schema)
		d2 := readCSV(flag.Arg(1), schema)
		cfg := dtree.Config{MaxDepth: *maxDepth, MinLeaf: *minLeaf}
		m1, err := core.BuildDTModel(d1, cfg)
		if err != nil {
			fatal(err)
		}
		m2, err := core.BuildDTModel(d2, cfg)
		if err != nil {
			fatal(err)
		}
		dev, err := core.DTDeviation(m1, m2, d1, d2, f, g, core.DTOptions{})
		if err != nil {
			fatal(err)
		}
		fmt.Printf("dt-models: %d and %d leaves\n", m1.Tree.NumLeaves(), m2.Tree.NumLeaves())
		fmt.Printf("deviation delta(%s,%s) = %.6f\n", *fName, *gName, dev)
		if *qualify {
			q, err := core.QualifyDT(d1, d2, cfg, f, g, core.QualifyOptions{Replicates: *replicates, Seed: *seed})
			if err != nil {
				fatal(err)
			}
			fmt.Printf("significance sig(delta) = %.1f%% (bootstrap, %d replicates)\n", q.Significance, len(q.Null))
		}
	default:
		fatal(fmt.Errorf("unknown model class %q (want lits or dt)", *model))
	}
}

func readTxns(path string) *txn.Dataset {
	fh, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer fh.Close()
	d, err := txn.Read(fh)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return d
}

func readCSV(path string, schema *dataset.Schema) *dataset.Dataset {
	fh, err := os.Open(path)
	if err != nil {
		fatal(err)
	}
	defer fh.Close()
	d, err := dataset.ReadCSV(fh, schema)
	if err != nil {
		fatal(fmt.Errorf("%s: %w", path, err))
	}
	return d
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "focus:", err)
	os.Exit(1)
}
