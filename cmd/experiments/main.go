// Command experiments regenerates the paper's tables and figures.
//
// Usage:
//
//	experiments [-scale quick|laptop|paper] [-seed N] EXPERIMENT...
//
// where EXPERIMENT is one of: table1, table2, fig7, fig8, fig9, fig10,
// fig11, fig12, fig13, fig14, fig15, or "all".
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"focus/internal/experiments"
	"focus/internal/parallel"
)

func main() {
	var (
		scaleName = flag.String("scale", "laptop", "workload scale: quick, laptop, or paper")
		seed      = flag.Int64("seed", 1, "experiment seed")
		par       = flag.Int("parallelism", 0, "worker count for scans and bootstrap (0 = GOMAXPROCS, 1 = serial)")
	)
	flag.Parse()
	parallel.SetDefault(*par)
	if flag.NArg() == 0 {
		fmt.Fprintln(os.Stderr, "usage: experiments [flags] table1|table2|fig7..fig15|all ...")
		flag.PrintDefaults()
		os.Exit(2)
	}
	sc, err := experiments.ScaleByName(*scaleName)
	if err != nil {
		fatal(err)
	}

	ids := flag.Args()
	if len(ids) == 1 && ids[0] == "all" {
		ids = []string{"table1", "table2", "fig7", "fig8", "fig9", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15"}
	}
	for _, id := range ids {
		start := time.Now()
		if err := run(id, sc, *seed); err != nil {
			fatal(err)
		}
		fmt.Printf("[%s done in %s]\n\n", id, time.Since(start).Round(time.Millisecond))
	}
}

func run(id string, sc experiments.Scale, seed int64) error {
	switch id {
	case "table1":
		res, err := experiments.Table1(sc, seed)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
	case "table2":
		res, err := experiments.Table2(sc, seed)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
	case "fig7", "fig8", "fig9":
		idx := int(id[3] - '7')
		res, err := experiments.LitsSDCurves(sc, idx, seed)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
	case "fig10", "fig11", "fig12":
		idx := int(id[4] - '0')
		res, err := experiments.DTSDCurves(sc, idx, seed)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
	case "fig13":
		res, err := experiments.Fig13(sc, seed)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
	case "fig14":
		res, err := experiments.Fig14(sc, seed)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
	case "fig15":
		res, err := experiments.Fig15(sc, seed)
		if err != nil {
			return err
		}
		res.Print(os.Stdout)
	default:
		return fmt.Errorf("unknown experiment %q", id)
	}
	return nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "experiments:", err)
	os.Exit(1)
}
