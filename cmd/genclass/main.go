// Command genclass generates synthetic classification data with the
// reimplemented generator of Agrawal, Imielinski & Swami (TKDE 1993) and
// writes it as CSV readable by cmd/focus.
//
// Usage:
//
//	genclass -name 0.5M.F2 -seed 3 -o people.csv
//	genclass -tuples 100000 -fn 1 -noise 0.05 -o people.csv
package main

import (
	"flag"
	"fmt"
	"os"

	"focus/internal/classgen"
)

func main() {
	var (
		name   = flag.String("name", "", "dataset name like 1M.F1 (overrides the numeric flags)")
		tuples = flag.Int("tuples", 100000, "number of tuples")
		fn     = flag.Int("fn", 1, "classification function 1..10")
		noise  = flag.Float64("noise", 0, "label noise probability in [0,1]")
		seed   = flag.Int64("seed", 1, "generator seed")
		out    = flag.String("o", "", "output file (default stdout)")
	)
	flag.Parse()

	var cfg classgen.Config
	if *name != "" {
		parsed, err := classgen.ParseName(*name)
		if err != nil {
			fatal(err)
		}
		cfg = parsed
	} else {
		cfg = classgen.Config{NumTuples: *tuples, Function: classgen.Function(*fn)}
	}
	cfg.NoiseLevel = *noise
	cfg.Seed = *seed

	d, err := classgen.Generate(cfg)
	if err != nil {
		fatal(err)
	}
	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fatal(err)
		}
		defer f.Close()
		w = f
	}
	if err := d.WriteCSV(w); err != nil {
		fatal(err)
	}
	counts := d.ClassCounts()
	fmt.Fprintf(os.Stderr, "generated %s: %d tuples, class balance A=%d B=%d\n",
		cfg.Name(), d.Len(), counts[0], counts[1])
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "genclass:", err)
	os.Exit(1)
}
