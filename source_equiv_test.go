package focus_test

// Public-surface equivalence suite for the streaming data-entry redesign:
// ReadCSV / ReadTxns must be byte-identical to draining the corresponding
// Source, with or without re-batching through Chunked — the acceptance
// criterion that lets the whole-file readers remain thin wrappers.

import (
	"bytes"
	"context"
	"io"
	"reflect"
	"testing"

	"focus"
	"focus/internal/classgen"
	"focus/internal/quest"
)

func drainTuples(t *testing.T, src focus.Source[*focus.Dataset], s *focus.Schema) *focus.Dataset {
	t.Helper()
	out := focus.FromTuples(s, nil)
	for {
		b, err := src.Next(context.Background())
		if err == io.EOF {
			return out
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		out.Tuples = append(out.Tuples, b.Tuples...)
	}
}

func TestReadCSVSourceEquivalence(t *testing.T) {
	schema := classgen.Schema()
	d, err := classgen.Generate(classgen.Config{NumTuples: 7000, Function: classgen.F2, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	whole, err := focus.ReadCSV(bytes.NewReader(raw), schema)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	drained := drainTuples(t, focus.CSVSource(bytes.NewReader(raw), schema), schema)
	chunked := drainTuples(t, focus.Chunked(focus.CSVSource(bytes.NewReader(raw), schema), 333), schema)
	if !reflect.DeepEqual(whole.Tuples, d.Tuples) {
		t.Fatal("ReadCSV diverges from the written dataset")
	}
	if !reflect.DeepEqual(drained.Tuples, whole.Tuples) {
		t.Fatal("drained CSVSource diverges from ReadCSV")
	}
	if !reflect.DeepEqual(chunked.Tuples, whole.Tuples) {
		t.Fatal("Chunked(CSVSource) diverges from ReadCSV")
	}
}

func TestReadTxnsSourceEquivalence(t *testing.T) {
	d, err := quest.Generate(quest.Config{NumTxns: 6000, NumItems: 120, AvgTxnLen: 8, NumPatterns: 40, AvgPatternLen: 3, Seed: 12})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := d.Write(&buf); err != nil {
		t.Fatal(err)
	}
	raw := buf.Bytes()

	whole, err := focus.ReadTxns(bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("ReadTxns: %v", err)
	}
	if !reflect.DeepEqual(whole, d) {
		t.Fatal("ReadTxns diverges from the written dataset")
	}

	src := focus.Chunked(focus.TxnSource(bytes.NewReader(raw)), 1000)
	drained := focus.FromTransactions(whole.NumItems, nil)
	batches := 0
	for {
		b, err := src.Next(context.Background())
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		if b.NumItems != whole.NumItems {
			t.Fatalf("batch universe %d, want %d", b.NumItems, whole.NumItems)
		}
		if b.Len() > 1000 {
			t.Fatalf("chunked batch holds %d rows", b.Len())
		}
		drained.Txns = append(drained.Txns, b.Txns...)
		batches++
	}
	if batches != 6 {
		t.Fatalf("drained %d chunks, want 6", batches)
	}
	if !reflect.DeepEqual(drained.Txns, whole.Txns) {
		t.Fatal("Chunked(TxnSource) diverges from ReadTxns")
	}
}

// TestJSONLCSVAgreement pins that the two tuple wire formats decode to the
// same dataset.
func TestJSONLCSVAgreement(t *testing.T) {
	schema := classgen.Schema()
	d, err := classgen.Generate(classgen.Config{NumTuples: 1200, Function: classgen.F1, Seed: 13})
	if err != nil {
		t.Fatal(err)
	}
	var csvBuf, jsonlBuf bytes.Buffer
	if err := d.WriteCSV(&csvBuf); err != nil {
		t.Fatal(err)
	}
	if err := d.WriteJSONL(&jsonlBuf); err != nil {
		t.Fatal(err)
	}
	fromCSV, err := focus.ReadCSV(&csvBuf, schema)
	if err != nil {
		t.Fatalf("ReadCSV: %v", err)
	}
	fromJSONL, err := focus.ReadJSONL(&jsonlBuf, schema)
	if err != nil {
		t.Fatalf("ReadJSONL: %v", err)
	}
	if !reflect.DeepEqual(fromCSV.Tuples, fromJSONL.Tuples) {
		t.Fatal("CSV and JSONL decodes disagree")
	}
}
