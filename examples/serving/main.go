// Serving: deviation monitoring as a service. focusd (internal/serve)
// exposes a multi-tenant registry of monitor sessions over HTTP/JSON: a
// client creates a named session pinned on reference data, streams batches
// at it, and polls reports and alerts — the change-detection-as-a-service
// framing of the monitoring literature on top of the paper's measurement
// core.
//
// The example boots the focusd handler in-process on an ephemeral port,
// then plays an HTTP client: it creates a streaming source from CSV-shaped
// tuple data, drives a cluster session through a drift (salary
// distribution shifts after day 3), and reads the alert back out of the
// report endpoint. Against a deployed focusd, only the base URL changes.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"

	"focus"
	"focus/internal/classgen"
	"focus/internal/dataset"
	"focus/internal/serve"
)

func main() {
	// Server side: focusd is serve.NewRegistry().Handler() behind a
	// listener; here it runs in-process.
	ts := httptest.NewServer(serve.NewRegistry().Handler())
	defer ts.Close()
	fmt.Printf("focusd serving on %s\n\n", ts.URL)

	// Reference data: last quarter's tuples, shipped as JSON rows.
	ref, err := classgen.Generate(classgen.Config{NumTuples: 4000, Function: classgen.F1, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}
	post(ts.URL+"/v1/sessions", map[string]any{
		"name":        "payroll",
		"model":       "cluster",
		"schema":      schemaJSON(),
		"grid_attrs":  []string{"salary", "age"},
		"grid_bins":   6,
		"min_density": 0.02, // cells below 2% density are noise, not clusters
		"window":      2,
		"threshold":   0.4,
		"reference":   rowsJSON(ref),
	})
	fmt.Println("created session \"payroll\" (cluster model over salary x age, window 2, threshold 0.4)")

	// Client side: each day's batch POSTs to the session. Days 0-2 match
	// the reference process; day 3 onward the salary distribution
	// collapses toward its lower half (a pay freeze), moving mass across
	// grid cells.
	for day := 0; day < 6; day++ {
		note := "same process"
		batch, err := classgen.Generate(classgen.Config{NumTuples: 1500, Function: classgen.F1, Seed: 100 + int64(day)})
		if err != nil {
			log.Fatal(err)
		}
		if day >= 3 {
			note = "drift injected"
			for _, t := range batch.Tuples {
				t[classgen.AttrSalary] = 20000 + (t[classgen.AttrSalary]-20000)*0.4
			}
		}
		resp := post(ts.URL+"/v1/sessions/payroll/batches", map[string]any{
			"epoch": day,
			"rows":  rowsJSON(batch),
		})
		rep := resp["report"].(map[string]any)
		alert := ""
		if rep["alert"].(bool) {
			alert = "   <<< ALERT"
		}
		fmt.Printf("day %d (%s): deviation %.4f over %v regions%s\n",
			day, note, rep["deviation"].(float64), rep["regions"], alert)
	}

	// Poll the report endpoint like a dashboard would.
	var reports struct {
		Reports []map[string]any `json:"reports"`
		Alerts  int              `json:"alerts"`
	}
	get(ts.URL+"/v1/sessions/payroll/reports", &reports)
	fmt.Printf("\nreport endpoint: %d reports, %d alerts\n", len(reports.Reports), reports.Alerts)
	if reports.Alerts == 0 {
		log.Fatal("serving example ended without an alert on the drifted stream")
	}
}

// schemaJSON renders the classgen schema in the focusd wire format.
func schemaJSON() map[string]any {
	s := classgen.Schema()
	attrs := make([]map[string]any, 0, len(s.Attrs))
	for _, a := range s.Attrs {
		if a.Kind == dataset.Numeric {
			attrs = append(attrs, map[string]any{"name": a.Name, "kind": "numeric", "min": a.Min, "max": a.Max})
		} else {
			attrs = append(attrs, map[string]any{"name": a.Name, "kind": "categorical", "values": a.Values})
		}
	}
	out := map[string]any{"attrs": attrs}
	if s.Class >= 0 {
		out["class"] = s.Attrs[s.Class].Name
	}
	return out
}

// rowsJSON renders a dataset's tuples as wire rows (objects keyed by
// attribute name).
func rowsJSON(d *focus.Dataset) []map[string]any {
	rows := make([]map[string]any, len(d.Tuples))
	for i, t := range d.Tuples {
		row := make(map[string]any, len(t))
		for j, v := range t {
			a := &d.Schema.Attrs[j]
			if a.Values != nil {
				row[a.Name] = a.Values[int(v)]
			} else {
				row[a.Name] = v
			}
		}
		rows[i] = row
	}
	return rows
}

func post(url string, body any) map[string]any {
	raw, err := json.Marshal(body)
	if err != nil {
		log.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	var out map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		log.Fatal(err)
	}
	if resp.StatusCode >= 300 {
		log.Fatalf("POST %s: %d: %v", url, resp.StatusCode, out)
	}
	return out
}

func get(url string, dst any) {
	resp, err := http.Get(url)
	if err != nil {
		log.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(dst); err != nil {
		log.Fatal(err)
	}
}
