// Quickstart: measure how much two dataset snapshots differ through the
// models they induce, and test whether the difference is statistically
// meaningful.
//
// The scenario is the paper's motivating example (Section 1): an analyst
// monitors weekly snapshots and only wants to re-analyze when the current
// snapshot genuinely differs from the previous one.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"focus"
	"focus/internal/quest"
)

func main() {
	// Week 1: customer transactions from the usual purchasing process.
	cfg := quest.DefaultConfig(8000)
	cfg.NumItems = 400
	cfg.NumPatterns = 300
	cfg.AvgTxnLen = 10
	cfg.Seed = 1
	process, err := quest.NewGenerator(cfg)
	if err != nil {
		log.Fatal(err)
	}
	week1 := process.GenerateN(8000)

	// Week 2: the same purchasing process (same co-purchase patterns),
	// fresh transactions — a typical successive snapshot.
	week2 := process.GenerateN(8000)

	// Week 3: customer behaviour changed — longer co-purchase patterns.
	changed := cfg
	changed.AvgPatternLen = 8
	changed.Seed = 3
	week3, err := quest.Generate(changed)
	if err != nil {
		log.Fatal(err)
	}

	const minSupport = 0.02
	// The lits-model class instance carries the mining threshold; every
	// pipeline below runs through it.
	lits := focus.Lits(minSupport)
	m1, err := lits.Induce(week1, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("week 1 model: %d frequent itemsets at %.0f%% support\n", m1.Len(), minSupport*100)

	for _, wk := range []struct {
		name string
		data *focus.TxnDataset
	}{
		{"week 2 (same process)", week2},
		{"week 3 (changed process)", week3},
	} {
		m, err := lits.Induce(wk.data, 0)
		if err != nil {
			log.Fatal(err)
		}
		// The deviation extends both models to their greatest common
		// refinement and sums the per-itemset support differences
		// (Definition 3.6 with f_a and g_sum).
		dev, err := focus.Deviation(lits, m1, m, week1, wk.data, focus.AbsoluteDiff, focus.Sum)
		if err != nil {
			log.Fatal(err)
		}
		// delta* needs only the two models — instant, and never
		// underestimates (Theorem 4.2).
		bound := focus.LitsUpperBound(m1, m, focus.Sum)

		// Is the deviation larger than same-process noise? Bootstrap the
		// null distribution (Section 3.4).
		q, err := focus.Qualify(lits, week1, wk.data, focus.AbsoluteDiff, focus.Sum,
			focus.WithReplicates(29), focus.WithSeed(42))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-26s delta=%.4f  delta*=%.4f  significance=%.0f%%\n",
			wk.name, dev, bound, q.Significance)
	}
	fmt.Println("\nA high significance (99%+) tells the analyst the snapshot deserves a fresh analysis;")
	fmt.Println("a low one means the difference is within same-process sampling noise.")
}
