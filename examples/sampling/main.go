// Sampling: the sample-size study of Section 6 in miniature. Is a model
// built from a sample good enough, and how fast does its quality improve
// with the sample size? The sample deviation SD = delta(M, M_S) quantifies
// how representative a sample S is of the full dataset D; the Wilcoxon test
// tells whether growing the sample still helps significantly.
//
//	go run ./examples/sampling
package main

import (
	"fmt"
	"log"
	"math/rand"

	"focus"
	"focus/internal/quest"
	"focus/internal/stats"
)

func main() {
	cfg := quest.DefaultConfig(10000)
	cfg.NumItems = 300
	cfg.NumPatterns = 300
	cfg.AvgTxnLen = 10
	cfg.Seed = 5
	d, err := quest.Generate(cfg)
	if err != nil {
		log.Fatal(err)
	}
	const minSupport = 0.02
	m, err := focus.MineLits(d, minSupport)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("full dataset: %d transactions, model with %d frequent itemsets\n\n", d.Len(), m.Len())

	fractions := []float64{0.01, 0.05, 0.1, 0.2, 0.3, 0.5, 0.8}
	const samplesPerSize = 8
	rng := rand.New(rand.NewSource(99))

	sds := make([][]float64, len(fractions))
	fmt.Printf("%-8s %-12s %-12s\n", "SF", "mean SD", "min..max")
	for i, sf := range fractions {
		sds[i] = make([]float64, samplesPerSize)
		for j := range sds[i] {
			sample := d.SampleFraction(sf, rng)
			ms, err := focus.MineLits(sample, minSupport)
			if err != nil {
				log.Fatal(err)
			}
			sd, err := focus.Deviation(focus.Lits(minSupport), m, ms, d, sample, focus.AbsoluteDiff, focus.Sum)
			if err != nil {
				log.Fatal(err)
			}
			sds[i][j] = sd
		}
		lo, hi := stats.MinMax(sds[i])
		fmt.Printf("%-8.2f %-12.4f %.4f..%.4f\n", sf, stats.Mean(sds[i]), lo, hi)
	}

	fmt.Println("\nWilcoxon significance that the larger sample is more representative:")
	for i := 0; i+1 < len(fractions); i++ {
		res := stats.WilcoxonRankSum(sds[i+1], sds[i], stats.Less)
		fmt.Printf("  SF %.2f -> %.2f: %.2f%%\n", fractions[i], fractions[i+1], res.Significance)
	}
	fmt.Println("\nAs in the paper: bigger samples are better with statistical significance, but the")
	fmt.Println("marginal gain collapses past SF ~0.2-0.3 — a 20-30% sample often suffices (Section 6.1.3).")
}
