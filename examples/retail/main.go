// Retail: the exploratory-analysis scenario of Section 5.1. Two store
// outlets sell items from two departments (shoes and clothes). The analyst
// compares the popular itemsets of each department across the stores with
// the structural and rank operators, and focuses the deviation on each
// department to see where the stores differ.
//
//	go run ./examples/retail
package main

import (
	"fmt"
	"log"
	"math/rand"

	"focus"
	"focus/internal/apriori"
	"focus/internal/txn"
)

const (
	numItems   = 200
	deptSplit  = 100 // items 0..99: shoes (I1); 100..199: clothes (I2)
	numTxns    = 6000
	minSupport = 0.02
)

// generateStore synthesizes a store's transactions: shoppers buy small
// bundles within one department; bundle preferences differ per store via
// the seed and a department bias.
func generateStore(seed int64, clothesBias float64) *focus.TxnDataset {
	rng := rand.New(rand.NewSource(seed))
	d := txn.New(numItems)
	// A store has a handful of popular bundles per department.
	mkBundles := func(lo, hi, count int) [][]txn.Item {
		var out [][]txn.Item
		for i := 0; i < count; i++ {
			size := 2 + rng.Intn(3)
			b := make([]txn.Item, 0, size)
			for len(b) < size {
				b = append(b, txn.Item(lo+rng.Intn(hi-lo)))
			}
			out = append(out, b)
		}
		return out
	}
	shoes := mkBundles(0, deptSplit, 8)
	clothes := mkBundles(deptSplit, numItems, 8)
	for i := 0; i < numTxns; i++ {
		var bundle []txn.Item
		if rng.Float64() < clothesBias {
			bundle = clothes[rng.Intn(len(clothes))]
		} else {
			bundle = shoes[rng.Intn(len(shoes))]
		}
		t := make(txn.Transaction, 0, len(bundle)+2)
		t = append(t, bundle...)
		// Plus some impulse buys.
		for j := 0; j < rng.Intn(3); j++ {
			t = append(t, txn.Item(rng.Intn(numItems)))
		}
		d.Add(t.Normalize())
	}
	return d
}

func main() {
	store1 := generateStore(11, 0.5)
	store2 := generateStore(22, 0.7) // store 2 leans toward clothes

	l1, err := focus.MineLits(store1, minSupport)
	if err != nil {
		log.Fatal(err)
	}
	l2, err := focus.MineLits(store2, minSupport)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store 1: %d frequent itemsets; store 2: %d\n\n", l1.Len(), l2.Len())

	// Department membership predicates (the P(I1), P(I2) of Section 5.1).
	var shoesItems, clothesItems []txn.Item
	for i := txn.Item(0); i < deptSplit; i++ {
		shoesItems = append(shoesItems, i)
	}
	for i := txn.Item(deptSplit); i < numItems; i++ {
		clothesItems = append(clothesItems, i)
	}

	// The structural union (GCR) of the two models' itemset collections.
	gcr := focus.ItemsetUnion(l1.FS.Itemsets, l2.FS.Itemsets)

	// Per-department top-10 by deviation: the paper's
	// sigma_10(rank(P(I1) ∩ (Phi_L1 ⊔ Phi_L2), delta)) expression.
	for _, dept := range []struct {
		name  string
		items []txn.Item
	}{
		{"shoes", shoesItems},
		{"clothes", clothesItems},
	} {
		within := withinDept(dept.items)
		deptSets := filter(gcr, within)
		ranked := focus.RankItemsets(deptSets, store1, store2, focus.AbsoluteDiff)
		top := focus.TopItemsets(ranked, 10)
		fmt.Printf("top changed itemsets in %s (of %d):\n", dept.name, len(deptSets))
		for _, r := range top {
			fmt.Printf("  %-18v sup1=%.3f sup2=%.3f |diff|=%.3f\n", r.Itemset, r.Sup1, r.Sup2, r.Deviation)
		}

		// Focussed deviation: how much do the stores differ within this
		// department overall?
		dev, err := focus.Deviation(focus.Lits(minSupport), l1, l2, store1, store2,
			focus.AbsoluteDiff, focus.Sum, focus.WithFocusItemsets(within))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  focussed deviation over %s: %.4f\n\n", dept.name, dev)
	}

	// Combined top-20 across both departments.
	ranked := focus.RankItemsets(gcr, store1, store2, focus.AbsoluteDiff)
	fmt.Println("combined top-20 changed itemsets:")
	for _, r := range focus.TopItemsets(ranked, 20) {
		fmt.Printf("  %-18v sup1=%.3f sup2=%.3f |diff|=%.3f\n", r.Itemset, r.Sup1, r.Sup2, r.Deviation)
	}
	fmt.Println("\nItemsets whose support moved most are where the two stores' customers behave differently —")
	fmt.Println("the basis for store-specific marketing (Section 1's second motivating example).")
}

func withinDept(items []txn.Item) func(apriori.Itemset) bool {
	in := make(map[txn.Item]bool, len(items))
	for _, it := range items {
		in[it] = true
	}
	return func(s apriori.Itemset) bool {
		for _, it := range s {
			if !in[it] {
				return false
			}
		}
		return true
	}
}

func filter(sets []apriori.Itemset, keep func(apriori.Itemset) bool) []apriori.Itemset {
	var out []apriori.Itemset
	for _, s := range sets {
		if keep(s) {
			out = append(out, s)
		}
	}
	return out
}
