// Monitoring: the change-monitoring scenario of Section 5.2. A classifier
// was trained on last quarter's data; as new data arrives, the analyst asks
// "by how much does the old model misrepresent the new data?" — answered
// three ways, all inside the FOCUS framework:
//
//  1. the misclassification error, which is exactly half the FOCUS
//     deviation between the new data and its predicted version (Theorem 5.2);
//
//  2. the chi-squared goodness-of-fit statistic over the tree's regions
//     (Proposition 5.1);
//
//  3. the bootstrap test of Section 5.2.2, which replaces the textbook
//     chi-squared table (whose preconditions fail on tree cells) with an
//     exact null distribution.
//
//     go run ./examples/monitoring
package main

import (
	"fmt"
	"log"

	"focus"
	"focus/internal/classgen"
)

func main() {
	// Last quarter: customers behave per function F1 (age bands).
	old, err := classgen.Generate(classgen.Config{NumTuples: 20000, Function: classgen.F1, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	treeCfg := focus.TreeConfig{MaxDepth: 8, MinLeaf: 50}
	model, err := focus.BuildDTModel(old, treeCfg)
	if err != nil {
		log.Fatal(err)
	}
	tree := model.Tree
	fmt.Printf("trained dt-model on %d tuples: %d leaves\n\n", old.Len(), tree.NumLeaves())

	batches := []struct {
		name string
		fn   classgen.Function
		seed int64
	}{
		{"batch A: same process (F1)", classgen.F1, 7},
		{"batch B: drifted process (F6: commissions now count)", classgen.F6, 8},
		{"batch C: new process (F3: education matters)", classgen.F3, 9},
	}
	for _, b := range batches {
		batch, err := classgen.Generate(classgen.Config{NumTuples: 5000, Function: b.fn, Seed: b.seed})
		if err != nil {
			log.Fatal(err)
		}
		me, err := focus.MisclassificationViaFOCUS(tree, batch)
		if err != nil {
			log.Fatal(err)
		}
		x2, err := focus.ChiSquared(tree, old, batch, 0.5)
		if err != nil {
			log.Fatal(err)
		}
		test, err := focus.ChiSquaredBootstrapTest(tree, treeCfg, old, batch, 0.5, 99, 42)
		if err != nil {
			log.Fatal(err)
		}
		verdict := "fits the old model"
		if test.PValue < 0.05 {
			verdict = "DOES NOT fit the old model"
		}
		fmt.Printf("%s\n", b.name)
		fmt.Printf("  misclassification error (via FOCUS, Thm 5.2): %.4f\n", me)
		fmt.Printf("  chi-squared over tree cells (Prop 5.1):       %.1f\n", x2)
		fmt.Printf("  bootstrap p-value (%d cells):                 %.3f -> %s\n\n",
			test.DFApprox+1, test.PValue, verdict)
	}
}
