// Monitoring: the change-monitoring scenario of Section 5.2 run
// continuously. A classifier was trained on last quarter's data; new data
// arrives in daily batches. A focus.Monitor keeps a sliding window of the
// most recent batches, maintains the window's measures incrementally
// (each advance subtracts the expired batch's summary and adds the new
// one — no rescans), and after every batch emits the FOCUS deviation of
// the window against the pinned reference model, bootstrap-qualifies it,
// and raises an alert when it crosses a threshold.
//
// The stream below carries an injected drift: days 0-3 come from the
// training process (F1), day 4 onward from a changed process (F6, then
// F3). The monitor's deviation jumps and the alert callback fires.
//
//	go run ./examples/monitoring
package main

import (
	"fmt"
	"log"

	"focus"
	"focus/internal/classgen"
)

func main() {
	// Last quarter: customers behave per function F1 (age bands).
	old, err := classgen.Generate(classgen.Config{NumTuples: 20000, Function: classgen.F1, Seed: 2})
	if err != nil {
		log.Fatal(err)
	}
	treeCfg := focus.TreeConfig{MaxDepth: 8, MinLeaf: 50}
	model, err := focus.BuildDTModel(old, treeCfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("trained dt-model on %d tuples: %d leaves\n\n", old.Len(), model.Tree.NumLeaves())

	// The unified monitor streams any model class; PinnedDT is the
	// Section 5.2 instantiation imposing the trained tree's structure on
	// the new data.
	mon, err := focus.NewMonitor(focus.PinnedDT(model.Tree), old,
		focus.WithWindow(3),       // sliding window over the last three days
		focus.WithThreshold(0.15), // alert when delta(fa,sum) reaches this
		focus.WithQualification(), // bootstrap sig(delta) for every report
		focus.WithReplicates(49),
		focus.WithSeed(42),
		focus.WithAlert(func(r focus.MonitorReport) {
			fmt.Printf("  >>> ALERT day %d: deviation %.4f crossed the threshold\n",
				r.Epoch, r.Deviation)
		}),
	)
	if err != nil {
		log.Fatal(err)
	}

	days := []struct {
		fn   classgen.Function
		note string
	}{
		{classgen.F1, "same process"},
		{classgen.F1, "same process"},
		{classgen.F1, "same process"},
		{classgen.F1, "same process"},
		{classgen.F6, "drift injected: commissions now count"},
		{classgen.F6, "drift continues"},
		{classgen.F3, "new process: education matters"},
	}
	for day, b := range days {
		batch, err := classgen.Generate(classgen.Config{NumTuples: 5000, Function: b.fn, Seed: 100 + int64(day)})
		if err != nil {
			log.Fatal(err)
		}
		rep, err := mon.IngestEpoch(int64(day), batch)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("day %d (%s)\n", day, b.note)
		fmt.Printf("  window: %d batches, %d tuples vs reference %d tuples over %d cells\n",
			rep.Batches, rep.N, rep.RefN, rep.Regions)
		fmt.Printf("  deviation delta(fa,sum) = %.4f   sig(delta) = %.1f%%\n",
			rep.Deviation, rep.Qual.Significance)
	}

	last := mon.Last()
	if last == nil || !last.Alert {
		log.Fatal("monitoring example ended without an alert on the drifted stream")
	}
	fmt.Printf("\n%d reports emitted; final deviation %.4f (alerting)\n",
		mon.Reports(), last.Deviation)
}
