// Embedding: the dataset-collection comparison of Section 4.1.1. A chain
// with many stores wants a map of which outlets have similar customers.
// Pairwise deviations via delta* need only the mined models — no dataset
// rescans — and because delta* satisfies the triangle inequality
// (Theorem 4.2), the stores can be embedded into the plane for visual
// inspection.
//
//	go run ./examples/embedding
package main

import (
	"fmt"
	"log"

	"focus"
	"focus/internal/quest"
)

func main() {
	// Nine stores: three behaviour groups of three stores each. Stores in a
	// group share a purchasing process (one pattern pool); groups differ.
	const (
		groups       = 3
		storesPer    = 3
		txnsPerStore = 4000
		minSupport   = 0.02
	)
	var names []string
	var models []*focus.LitsModel
	for g := 0; g < groups; g++ {
		cfg := quest.DefaultConfig(txnsPerStore)
		cfg.NumItems = 300
		cfg.NumPatterns = 250
		cfg.AvgTxnLen = 8
		cfg.AvgPatternLen = float64(3 + 2*g) // groups differ in pattern length
		cfg.Seed = int64(100 * (g + 1))
		gen, err := quest.NewGenerator(cfg)
		if err != nil {
			log.Fatal(err)
		}
		for s := 0; s < storesPer; s++ {
			d := gen.GenerateN(txnsPerStore) // same process within the group
			m, err := focus.MineLits(d, minSupport)
			if err != nil {
				log.Fatal(err)
			}
			names = append(names, fmt.Sprintf("store-%c%d", 'A'+g, s+1))
			models = append(models, m)
		}
	}

	// Pairwise delta* distances: models only, no dataset scans.
	dist := focus.UpperBoundMatrix(models, focus.Sum)
	fmt.Println("pairwise delta* (upper-bound) distances:")
	fmt.Printf("%-10s", "")
	for _, n := range names {
		fmt.Printf("%10s", n)
	}
	fmt.Println()
	for i, row := range dist {
		fmt.Printf("%-10s", names[i])
		for _, v := range row {
			fmt.Printf("%10.2f", v)
		}
		fmt.Println()
	}

	// Embed into the plane (classical MDS on the delta* metric).
	coords, err := focus.Embed(dist, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n2-D embedding (stores from one group should cluster):")
	for i, c := range coords {
		fmt.Printf("  %-10s (%8.2f, %8.2f)\n", names[i], c[0], c[1])
	}
	fmt.Println("\nStores that land close together can share a marketing strategy;")
	fmt.Println("outliers deserve their own (the paper's second motivating example).")
}
