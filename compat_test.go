package focus_test

// The compatibility contract of the ModelClass refactor: every deprecated
// per-class entry point is a thin wrapper over the unified generic
// pipeline and produces bit-identical (==, not approximately equal)
// results, across difference/aggregate functions and parallelism settings.
//
//lint:file-ignore SA1019 this suite exercises the deprecated compat surface on purpose

import (
	"testing"

	"focus"
	"focus/internal/classgen"
)

type fgCase struct {
	name string
	f    focus.DiffFunc
	g    focus.AggFunc
}

func fgCases() []fgCase {
	return []fgCase{
		{"fa-sum", focus.AbsoluteDiff, focus.Sum},
		{"fa-max", focus.AbsoluteDiff, focus.Max},
		{"fs-sum", focus.ScaledDiff, focus.Sum},
		{"fs-max", focus.ScaledDiff, focus.Max},
	}
}

var parCases = []int{1, 4}

func classData(t *testing.T, n int, fn classgen.Function, seed int64) *focus.Dataset {
	t.Helper()
	d, err := classgen.Generate(classgen.Config{NumTuples: n, Function: fn, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestCompatLitsDeviation(t *testing.T) {
	d1, d2, _ := facadeTxnData(t)
	const ms = 0.03
	lits := focus.Lits(ms)
	m1, err := lits.Induce(d1, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := lits.Induce(d2, 1)
	if err != nil {
		t.Fatal(err)
	}
	narrow := func(s focus.Itemset) bool { return len(s) >= 2 }
	for _, fg := range fgCases() {
		for _, par := range parCases {
			old, err := focus.LitsDeviation(m1, m2, d1, d2, fg.f, fg.g, focus.LitsOptions{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			unified, err := focus.Deviation(lits, m1, m2, d1, d2, fg.f, fg.g, focus.WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			if old != unified {
				t.Errorf("%s/par%d: LitsDeviation %v != Deviation %v", fg.name, par, old, unified)
			}
			oldF, err := focus.LitsDeviation(m1, m2, d1, d2, fg.f, fg.g, focus.LitsOptions{Focus: narrow, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			unifiedF, err := focus.Deviation(lits, m1, m2, d1, d2, fg.f, fg.g,
				focus.WithFocusItemsets(narrow), focus.WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			if oldF != unifiedF {
				t.Errorf("%s/par%d: focussed LitsDeviation %v != Deviation %v", fg.name, par, oldF, unifiedF)
			}
		}
	}
}

func TestCompatDTDeviation(t *testing.T) {
	d1 := classData(t, 2500, classgen.F1, 301)
	d2 := classData(t, 2000, classgen.F3, 302)
	cfg := focus.TreeConfig{MaxDepth: 6, MinLeaf: 30}
	dt := focus.DT(cfg)
	m1, err := dt.Induce(d1, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := dt.Induce(d2, 1)
	if err != nil {
		t.Fatal(err)
	}
	young := focus.FullRegion(classgen.Schema()).ConstrainUpper(classgen.AttrAge, 45)
	for _, fg := range fgCases() {
		for _, par := range parCases {
			old, err := focus.DTDeviation(m1, m2, d1, d2, fg.f, fg.g, focus.DTOptions{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			unified, err := focus.Deviation(dt, m1, m2, d1, d2, fg.f, fg.g, focus.WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			if old != unified {
				t.Errorf("%s/par%d: DTDeviation %v != Deviation %v", fg.name, par, old, unified)
			}
			oldF, err := focus.DTDeviation(m1, m2, d1, d2, fg.f, fg.g, focus.DTOptions{Focus: young, Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			unifiedF, err := focus.Deviation(dt, m1, m2, d1, d2, fg.f, fg.g,
				focus.WithFocus(young), focus.WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			if oldF != unifiedF {
				t.Errorf("%s/par%d: focussed DTDeviation %v != Deviation %v", fg.name, par, oldF, unifiedF)
			}
		}
	}
}

func TestCompatClusterDeviation(t *testing.T) {
	d1 := classData(t, 3000, classgen.F1, 303)
	d2 := classData(t, 2500, classgen.F4, 304)
	grid, err := focus.NewGrid(classgen.Schema(), []int{classgen.AttrSalary, classgen.AttrAge}, 6)
	if err != nil {
		t.Fatal(err)
	}
	const md = 0.01
	cl := focus.Cluster(grid, md)
	m1, err := cl.Induce(d1, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := cl.Induce(d2, 1)
	if err != nil {
		t.Fatal(err)
	}
	for _, fg := range fgCases() {
		for _, par := range parCases {
			oldWith, err := focus.ClusterDeviationWith(m1, m2, d1, d2, fg.f, fg.g, focus.ClusterOptions{Parallelism: par})
			if err != nil {
				t.Fatal(err)
			}
			unified, err := focus.Deviation(cl, m1, m2, d1, d2, fg.f, fg.g, focus.WithParallelism(par))
			if err != nil {
				t.Fatal(err)
			}
			if oldWith != unified {
				t.Errorf("%s/par%d: ClusterDeviationWith %v != Deviation %v", fg.name, par, oldWith, unified)
			}
		}
		// ClusterDeviation is the zero-options alias of ClusterDeviationWith.
		alias, err := focus.ClusterDeviation(m1, m2, d1, d2, fg.f, fg.g)
		if err != nil {
			t.Fatal(err)
		}
		canonical, err := focus.ClusterDeviationWith(m1, m2, d1, d2, fg.f, fg.g, focus.ClusterOptions{})
		if err != nil {
			t.Fatal(err)
		}
		if alias != canonical {
			t.Errorf("%s: ClusterDeviation %v != ClusterDeviationWith %v", fg.name, alias, canonical)
		}
	}
}

func qualEqual(t *testing.T, name string, a, b focus.Qualification) {
	t.Helper()
	if a.Deviation != b.Deviation || a.Significance != b.Significance {
		t.Errorf("%s: wrapper (%v, %v%%) != unified (%v, %v%%)",
			name, a.Deviation, a.Significance, b.Deviation, b.Significance)
	}
	if len(a.Null) != len(b.Null) {
		t.Fatalf("%s: null sizes %d != %d", name, len(a.Null), len(b.Null))
	}
	for i := range a.Null {
		if a.Null[i] != b.Null[i] {
			t.Fatalf("%s: null[%d] %v != %v", name, i, a.Null[i], b.Null[i])
		}
	}
}

func TestCompatQualifyLits(t *testing.T) {
	d1, _, d3 := facadeTxnData(t)
	const ms = 0.03
	for _, par := range parCases {
		old, err := focus.QualifyLits(d1, d3, ms, focus.AbsoluteDiff, focus.Sum,
			focus.QualifyOptions{Replicates: 19, Seed: 7, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		unified, err := focus.Qualify(focus.Lits(ms), d1, d3, focus.AbsoluteDiff, focus.Sum,
			focus.WithReplicates(19), focus.WithSeed(7), focus.WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		qualEqual(t, "lits", old, unified)
	}
	// Extension nulls (|D2| >= |D1| with a shared prefix).
	blk := focus.FromTransactions(d1.NumItems, d3.Txns[:500])
	ext, err := d1.Concat(blk)
	if err != nil {
		t.Fatal(err)
	}
	old, err := focus.QualifyLits(d1, ext, ms, focus.AbsoluteDiff, focus.Sum,
		focus.QualifyOptions{Replicates: 19, Seed: 8, Extension: true})
	if err != nil {
		t.Fatal(err)
	}
	unified, err := focus.Qualify(focus.Lits(ms), d1, ext, focus.AbsoluteDiff, focus.Sum,
		focus.WithReplicates(19), focus.WithSeed(8), focus.WithExtension())
	if err != nil {
		t.Fatal(err)
	}
	qualEqual(t, "lits-extension", old, unified)
}

func TestCompatQualifyDT(t *testing.T) {
	d1 := classData(t, 1500, classgen.F1, 305)
	d2 := classData(t, 1500, classgen.F2, 306)
	cfg := focus.TreeConfig{MaxDepth: 5, MinLeaf: 40}
	for _, par := range parCases {
		old, err := focus.QualifyDT(d1, d2, cfg, focus.AbsoluteDiff, focus.Sum,
			focus.QualifyOptions{Replicates: 19, Seed: 9, Parallelism: par})
		if err != nil {
			t.Fatal(err)
		}
		unified, err := focus.Qualify(focus.DT(cfg), d1, d2, focus.AbsoluteDiff, focus.Sum,
			focus.WithReplicates(19), focus.WithSeed(9), focus.WithParallelism(par))
		if err != nil {
			t.Fatal(err)
		}
		qualEqual(t, "dt", old, unified)
	}
}

// QualifyCluster — impossible through the per-class API — must at least be
// deterministic, parallelism-invariant, and consistent with the unified
// deviation.
func TestClusterQualification(t *testing.T) {
	d1 := classData(t, 2000, classgen.F1, 307)
	d2 := classData(t, 1800, classgen.F3, 308)
	grid, err := focus.NewGrid(classgen.Schema(), []int{classgen.AttrSalary, classgen.AttrAge}, 5)
	if err != nil {
		t.Fatal(err)
	}
	cl := focus.Cluster(grid, 0.01)
	q1, err := focus.Qualify(cl, d1, d2, focus.AbsoluteDiff, focus.Sum,
		focus.WithReplicates(19), focus.WithSeed(11), focus.WithParallelism(1))
	if err != nil {
		t.Fatal(err)
	}
	q4, err := focus.Qualify(cl, d1, d2, focus.AbsoluteDiff, focus.Sum,
		focus.WithReplicates(19), focus.WithSeed(11), focus.WithParallelism(4))
	if err != nil {
		t.Fatal(err)
	}
	qualEqual(t, "cluster par1-vs-par4", q1, q4)
	m1, err := cl.Induce(d1, 1)
	if err != nil {
		t.Fatal(err)
	}
	m2, err := cl.Induce(d2, 1)
	if err != nil {
		t.Fatal(err)
	}
	dev, err := focus.Deviation(cl, m1, m2, d1, d2, focus.AbsoluteDiff, focus.Sum)
	if err != nil {
		t.Fatal(err)
	}
	if q1.Deviation != dev {
		t.Errorf("qualified deviation %v != Deviation %v", q1.Deviation, dev)
	}
	if q1.Significance < 0 || q1.Significance > 100 {
		t.Errorf("significance %v outside [0,100]", q1.Significance)
	}
}

// The counting-backend contract of the vertical-bitmap refactor: every
// lits pipeline — batch deviation, bootstrap qualification, incremental
// monitoring — produces bit-identical (==, not approximately equal)
// results whether itemset supports come from the trie subset scan or from
// the vertical TID-bitmap index, across f/g and parallelism. CI runs this
// sweep under -race, which also exercises the memoized index build from
// concurrent counting workers.

// TestCounterEquivalenceDeviation mines and measures through each forced
// backend end to end and requires identical models and deviations.
func TestCounterEquivalenceDeviation(t *testing.T) {
	d1, _, d3 := facadeTxnData(t)
	const ms = 0.03
	for _, fg := range fgCases() {
		for _, par := range parCases {
			devs := make([]float64, 0, 2)
			lens := make([]int, 0, 2)
			for _, c := range []focus.Counter{focus.CounterTrie, focus.CounterBitmap} {
				mc := focus.LitsWithCounter(ms, c)
				m1, err := mc.Induce(d1, par)
				if err != nil {
					t.Fatal(err)
				}
				m3, err := mc.Induce(d3, par)
				if err != nil {
					t.Fatal(err)
				}
				dev, err := focus.Deviation(mc, m1, m3, d1, d3, fg.f, fg.g,
					focus.WithParallelism(par), focus.WithCounter(c))
				if err != nil {
					t.Fatal(err)
				}
				devs = append(devs, dev)
				lens = append(lens, m1.Len()+m3.Len())
			}
			if lens[0] != lens[1] {
				t.Errorf("%s/par%d: trie mined %d itemsets, bitmap %d", fg.name, par, lens[0], lens[1])
			}
			if devs[0] != devs[1] {
				t.Errorf("%s/par%d: trie deviation %v != bitmap %v", fg.name, par, devs[0], devs[1])
			}
		}
	}
}

// TestCounterEquivalenceQualify runs the full bootstrap through each
// backend: observed deviation, significance and the whole null
// distribution must match exactly.
func TestCounterEquivalenceQualify(t *testing.T) {
	d1, _, d3 := facadeTxnData(t)
	const ms = 0.03
	for _, fg := range fgCases() {
		for _, par := range parCases {
			trie, err := focus.Qualify(focus.LitsWithCounter(ms, focus.CounterTrie), d1, d3, fg.f, fg.g,
				focus.WithReplicates(19), focus.WithSeed(13), focus.WithParallelism(par),
				focus.WithCounter(focus.CounterTrie))
			if err != nil {
				t.Fatal(err)
			}
			bitmap, err := focus.Qualify(focus.LitsWithCounter(ms, focus.CounterBitmap), d1, d3, fg.f, fg.g,
				focus.WithReplicates(19), focus.WithSeed(13), focus.WithParallelism(par),
				focus.WithCounter(focus.CounterBitmap))
			if err != nil {
				t.Fatal(err)
			}
			qualEqual(t, "counter-"+fg.name, trie, bitmap)
		}
	}
}

// TestCounterEquivalenceMonitor replays one batch stream through a trie
// monitor and a bitmap monitor (window advance, expiry, alerts,
// qualification) and requires identical reports at every step.
func TestCounterEquivalenceMonitor(t *testing.T) {
	d1, d2, d3 := facadeTxnData(t)
	const ms = 0.03
	for _, fg := range fgCases() {
		for _, par := range parCases {
			// Bootstrap qualification on every emission is the expensive
			// path; sweeping it once per parallelism keeps the suite quick
			// while the threshold/alert machinery runs for every f/g.
			opts := focus.MonitorOptions{
				WindowBatches: 2, Threshold: 0.1, F: fg.f, G: fg.g,
				Qualify: fg.name == "fa-sum", Replicates: 19, Seed: 17, Parallelism: par,
			}
			trieMon, err := focus.NewMonitor(focus.LitsWithCounter(ms, focus.CounterTrie), d1, focus.WithConfig(opts))
			if err != nil {
				t.Fatal(err)
			}
			bitmapMon, err := focus.NewMonitor(focus.LitsWithCounter(ms, focus.CounterBitmap), d1, focus.WithConfig(opts))
			if err != nil {
				t.Fatal(err)
			}
			emitted := false
			for _, batch := range [][]focus.Transaction{
				d2.Txns[:800], d3.Txns[:800], d2.Txns[800:1600], d3.Txns[800:1600],
			} {
				trieRep, err := trieMon.Ingest(focus.FromTransactions(d1.NumItems, batch))
				if err != nil {
					t.Fatal(err)
				}
				bitmapRep, err := bitmapMon.Ingest(focus.FromTransactions(d1.NumItems, batch))
				if err != nil {
					t.Fatal(err)
				}
				reportsEqual(t, "counter-"+fg.name, trieRep, bitmapRep)
				emitted = emitted || trieRep != nil
			}
			if !emitted {
				t.Fatal("monitors emitted nothing")
			}
		}
	}
}

func reportsEqual(t *testing.T, name string, a, b *focus.MonitorReport) {
	t.Helper()
	if (a == nil) != (b == nil) {
		t.Fatalf("%s: wrapper emitted=%v, unified emitted=%v", name, a != nil, b != nil)
	}
	if a == nil {
		return
	}
	if a.Seq != b.Seq || a.Epoch != b.Epoch || a.Batches != b.Batches ||
		a.N != b.N || a.RefN != b.RefN || a.Regions != b.Regions ||
		a.Deviation != b.Deviation || a.Alert != b.Alert {
		t.Errorf("%s: wrapper report %+v != unified %+v", name, a, b)
	}
	if (a.Qual == nil) != (b.Qual == nil) {
		t.Fatalf("%s: qualification presence differs", name)
	}
	if a.Qual != nil && (a.Qual.Deviation != b.Qual.Deviation || a.Qual.Significance != b.Qual.Significance) {
		t.Errorf("%s: wrapper qual (%v, %v%%) != unified (%v, %v%%)",
			name, a.Qual.Deviation, a.Qual.Significance, b.Qual.Deviation, b.Qual.Significance)
	}
}

func TestCompatMonitors(t *testing.T) {
	// Lits: deprecated constructor vs NewMonitor(Lits(...)) over the same
	// batch stream, with qualification on.
	d1, d2, d3 := facadeTxnData(t)
	const ms = 0.03
	for _, par := range parCases {
		opts := focus.MonitorOptions{WindowBatches: 2, Qualify: true, Replicates: 19, Seed: 5, Parallelism: par}
		oldMon, err := focus.NewLitsMonitor(d1, ms, opts)
		if err != nil {
			t.Fatal(err)
		}
		newMon, err := focus.NewMonitor(focus.Lits(ms), d1, focus.WithConfig(opts))
		if err != nil {
			t.Fatal(err)
		}
		for i, batch := range [][]focus.Transaction{d2.Txns[:1000], d3.Txns[:1000], d2.Txns[1000:2000]} {
			oldRep, err := oldMon.Ingest(batch)
			if err != nil {
				t.Fatal(err)
			}
			newRep, err := newMon.Ingest(focus.FromTransactions(d1.NumItems, batch))
			if err != nil {
				t.Fatal(err)
			}
			reportsEqual(t, "lits", oldRep, newRep)
			if i == 0 && oldRep == nil {
				t.Fatal("lits monitor emitted nothing")
			}
		}
	}

	// DT: pinned-tree monitor vs NewMonitor(PinnedDT(tree)), threshold
	// alerts on.
	train := classData(t, 3000, classgen.F1, 310)
	model, err := focus.BuildDTModel(train, focus.TreeConfig{MaxDepth: 6, MinLeaf: 30})
	if err != nil {
		t.Fatal(err)
	}
	dtOpts := focus.MonitorOptions{WindowBatches: 2, Threshold: 0.15, F: focus.ScaledDiff, G: focus.Max}
	oldDT, err := focus.NewDTMonitor(model.Tree, train, dtOpts)
	if err != nil {
		t.Fatal(err)
	}
	// The class-specific monitor exposes the generic unified monitor.
	var generic *focus.Monitor[*focus.Dataset, *focus.DTMeasures] = oldDT.Generic()
	if generic == nil {
		t.Fatal("deprecated monitor does not expose the generic monitor")
	}
	newDT, err := focus.NewMonitor(focus.PinnedDT(model.Tree), train, focus.WithConfig(dtOpts))
	if err != nil {
		t.Fatal(err)
	}
	schema := classgen.Schema()
	for i, fn := range []classgen.Function{classgen.F1, classgen.F3, classgen.F3} {
		batch := classData(t, 700, fn, 311+int64(i))
		oldRep, err := oldDT.Ingest(batch.Tuples)
		if err != nil {
			t.Fatal(err)
		}
		newRep, err := newDT.Ingest(focus.FromTuples(schema, batch.Tuples))
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, "dt", oldRep, newRep)
	}

	// Cluster: tumbling window, previous-window reference.
	grid, err := focus.NewGrid(schema, []int{classgen.AttrSalary, classgen.AttrAge}, 6)
	if err != nil {
		t.Fatal(err)
	}
	clOpts := focus.MonitorOptions{WindowBatches: 2, Tumbling: true, PreviousWindow: true}
	oldCl, err := focus.NewClusterMonitor(grid, 0.02, nil, clOpts)
	if err != nil {
		t.Fatal(err)
	}
	newCl, err := focus.NewMonitor(focus.Cluster(grid, 0.02), nil, focus.WithConfig(clOpts))
	if err != nil {
		t.Fatal(err)
	}
	for i, fn := range []classgen.Function{classgen.F1, classgen.F1, classgen.F4, classgen.F1, classgen.F4, classgen.F4} {
		batch := classData(t, 500, fn, 320+int64(i))
		oldRep, err := oldCl.Ingest(batch.Tuples)
		if err != nil {
			t.Fatal(err)
		}
		newRep, err := newCl.Ingest(batch)
		if err != nil {
			t.Fatal(err)
		}
		reportsEqual(t, "cluster", oldRep, newRep)
	}
}
